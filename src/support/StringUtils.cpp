//===- StringUtils.cpp - String helpers -----------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/support/StringUtils.h"

#include "dyndist/support/Result.h"

#include <cstdarg>
#include <cstdio>

using namespace dyndist;

std::string dyndist::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string dyndist::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string dyndist::padRight(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::string dyndist::padLeft(std::string S, size_t Width) {
  if (S.size() < Width)
    S.insert(S.begin(), Width - S.size(), ' ');
  return S;
}

std::string Error::str() const {
  const char *Name = "?";
  switch (Kind) {
  case Code::InvalidArgument:
    Name = "invalid-argument";
    break;
  case Code::Unsupported:
    Name = "unsupported";
    break;
  case Code::ObjectCrashed:
    Name = "object-crashed";
    break;
  case Code::Timeout:
    Name = "timeout";
    break;
  case Code::Unsolvable:
    Name = "unsolvable";
    break;
  case Code::ProtocolViolation:
    Name = "protocol-violation";
    break;
  }
  return std::string(Name) + ": " + Message;
}

void Table::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  // Compute column widths across header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0, E = Cells.size(); I != E; ++I)
      if (Cells[I].size() > Widths[I])
        Widths[I] = Cells[I].size();
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto RenderRow = [&Widths](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0, E = Widths.size(); I != E; ++I) {
      if (I != 0)
        Line += "  ";
      Line += padRight(I < Cells.size() ? Cells[I] : std::string(), Widths[I]);
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out;
  if (!Header.empty()) {
    Out += RenderRow(Header);
    size_t Total = 0;
    for (size_t W : Widths)
      Total += W;
    Total += Widths.empty() ? 0 : 2 * (Widths.size() - 1);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
