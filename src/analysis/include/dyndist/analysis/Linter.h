//===- dyndist/analysis/Linter.h - Determinism/phase-safety lint -*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dyndist-lint rule engine. It statically enforces the repo's
/// determinism and phase-safety contracts (docs/LINT.md has the full rule
/// catalog with rationale and examples):
///
///   D1  no iteration over unordered containers; unordered members in src/
///       must carry a reasoned allow(D1) proving the use is keyed-only
///   D2  banned nondeterminism sources in src/ (rand, time, wall clocks,
///       thread ids, getenv outside config entry points)
///   D3  pointer-order hazards (ordered containers keyed by raw pointer,
///       comparator-less sorts of pointer sequences)
///   D4  RNG discipline: std RNG engines only inside src/support/Random.cpp
///   D5  phase safety: calls to DYNDIST_SERIAL_ONLY functions must not be
///       reachable from lane-phase regions of the sharded kernel
///   S1  malformed suppression (missing reason, unknown rule id)
///   M1  malformed phase marker (no attachable declaration, unmatched
///       region begin/end)
///
/// Suppression grammar (reason is mandatory):
///
///     Code();            // dyndist-lint: allow(D1) reason why this is safe
///     // dyndist-lint: allow(D2,D4) reason — applies to the next code line
///
/// Phase-marker grammar: the comment must *begin* with the marker token
/// (so prose mentions like this paragraph never activate), followed by an
/// optional `: reason`. Markers attach to the next declaration — a
/// function signature, or a class head, which applies the marker to every
/// member function. The four markers:
///
///   * `DYNDIST_SERIAL_ONLY` — callable only from serial sub-phases; D5
///     flags any call to it reachable from lane-phase code.
///   * `DYNDIST_SERIAL_CONTEXT` — the function/class only ever runs in
///     serial phases; D5 traversal stops here.
///   * `DYNDIST_LANE_PHASE` — lane-phase root; D5 traversal starts here.
///   * `DYNDIST_LANE_REGION_BEGIN` / `DYNDIST_LANE_REGION_END` (each on
///     its own comment line) — bracket a lane-phase region inside an
///     otherwise-serial function body; calls between them are D5 roots.
///
/// The engine is file-set based: feed every source with addSource() (paths
/// are repo-relative and decide tree scoping: rules D2/D5 and the D1
/// declaration check apply to src/ only), then run() returns findings
/// sorted by (file, line, col, rule). Suppressed findings are retained and
/// flagged, so reports can show them.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_ANALYSIS_LINTER_H
#define DYNDIST_ANALYSIS_LINTER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dyndist {
namespace analysis {

/// Finding severity. Errors gate the exit code; warnings do too — the
/// distinction is informational (how likely the finding is a schedule bug
/// vs. a contract that needs an explicit proof).
enum class Severity : uint8_t { Error, Warning };

/// Static description of one rule, for --list-rules and docs.
struct RuleInfo {
  std::string_view Id;
  Severity DefaultSeverity;
  std::string_view Summary;
  std::string_view FixHint;
};

/// Returns the full rule catalog (D1..D5, S1, M1), in id order.
const std::vector<RuleInfo> &ruleCatalog();

/// One diagnostic. File/Line/Col point at the offending token.
struct Finding {
  std::string Rule;
  Severity Sev = Severity::Error;
  std::string File;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
  std::string FixHint;
  bool Suppressed = false;
  std::string SuppressReason;
};

/// Aggregate result of a lint run.
struct LintResult {
  std::vector<Finding> Findings;
  uint32_t FilesScanned = 0;

  /// Number of findings that are not suppressed (the exit-code gate).
  uint32_t unsuppressedCount() const {
    uint32_t N = 0;
    for (const Finding &F : Findings)
      N += F.Suppressed ? 0u : 1u;
    return N;
  }
};

/// The lint driver. Usage:
///
///     Linter L;
///     L.addSource("src/sim/Foo.cpp", Contents);
///     LintResult R = L.run();
///
/// addSource() paths must be repo-relative with '/' separators; the first
/// path component selects the tree ("src", "tools", "bench", "tests",
/// "examples") which scopes tree-restricted rules.
class Linter {
public:
  Linter();
  ~Linter();
  Linter(const Linter &) = delete;
  Linter &operator=(const Linter &) = delete;

  /// Restricts the run to a subset of rule ids (e.g. {"D1","D4"}). An empty
  /// set (the default) enables everything. S1/M1 grammar diagnostics are
  /// always on: a malformed suppression must never silently pass.
  void setEnabledRules(std::vector<std::string> Rules);

  /// Registers one source file for analysis. \p Path is the virtual
  /// repo-relative path (decides tree scoping and appears in diagnostics);
  /// \p Contents is the full text.
  void addSource(std::string Path, std::string_view Contents);

  /// Runs all rules over the registered file set.
  LintResult run();

private:
  struct Impl;
  Impl *P;
};

/// Renders \p R as the dyndist-lint JSON report (schema in docs/LINT.md).
std::string toJson(const LintResult &R, std::string_view Root);

/// Renders one finding as a `file:line:col: severity: [rule] message`
/// diagnostic line (plus the fix hint on a follow-up line when present).
std::string formatDiagnostic(const Finding &F);

} // namespace analysis
} // namespace dyndist

#endif // DYNDIST_ANALYSIS_LINTER_H
