//===- dyndist/analysis/Lexer.h - Lightweight C++ lexer ---------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free lexer for C++ source, built for dyndist-lint's
/// static determinism and phase-safety checks (docs/LINT.md). It is *not* a
/// compiler front end: it produces a flat token stream (identifiers,
/// numbers, literals, punctuation) plus a per-line comment side channel,
/// which is all the rule engine needs. Design points:
///
///   * Comments are captured, not discarded: suppressions
///     (`dyndist-lint: allow(...)`) and phase markers (`DYNDIST_SERIAL_ONLY`
///     et al.) are comment-grammar, so every comment is recorded with its
///     line and whether code precedes it on that line. Block comments are
///     split into one record per physical line.
///   * String/char literals (including raw strings) are lexed as single
///     tokens, so rule keywords appearing inside literals — e.g. the rule
///     tables of the linter itself, or test fixtures — never trigger rules.
///   * Preprocessor directives are swallowed whole (with continuations), so
///     `#include <unordered_map>` is not an identifier sighting.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_ANALYSIS_LEXER_H
#define DYNDIST_ANALYSIS_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dyndist {
namespace analysis {

/// Token categories. Punctuation keeps its spelling in Text; `::` and `->`
/// are combined into single tokens (the rule patterns key on them), all
/// other punctuation is one character per token (notably `>` is never
/// combined into `>>`, which keeps template-argument balancing simple).
enum class Tok : uint8_t {
  Ident,   ///< Identifier or keyword (the lexer does not distinguish).
  Number,  ///< Numeric literal, including separators/suffixes.
  String,  ///< String literal ("", raw, or prefixed) — content opaque.
  CharLit, ///< Character literal.
  Punct,   ///< Operator / punctuation.
};

/// One lexed token. Line and Col are 1-based.
struct Token {
  Tok Kind;
  std::string Text;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool is(std::string_view S) const { return Text == S; }
  bool isIdent(std::string_view S) const {
    return Kind == Tok::Ident && Text == S;
  }
};

/// One physical line of comment text, with the delimiters and decorative
/// leaders (`//`, `///`, `*`, `<`) stripped and the result trimmed.
struct Comment {
  std::string Text;
  uint32_t Line = 0;
  /// True when a code token precedes this comment on the same line (a
  /// trailing comment); suppression/marker targeting depends on it.
  bool FollowsCode = false;
};

/// The result of lexing one file.
struct LexedFile {
  std::vector<Token> Tokens;
  std::vector<Comment> Comments;
};

/// Lexes \p Source. Never fails: malformed input degrades to best-effort
/// tokens (an unterminated literal runs to end of file).
LexedFile lex(std::string_view Source);

} // namespace analysis
} // namespace dyndist

#endif // DYNDIST_ANALYSIS_LEXER_H
