//===- Lexer.cpp - Lightweight C++ lexer for dyndist-lint -----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/analysis/Lexer.h"

namespace dyndist {
namespace analysis {

namespace {

bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}

bool isIdentBody(char C) { return isIdentStart(C) || (C >= '0' && C <= '9'); }

bool isDigit(char C) { return C >= '0' && C <= '9'; }

/// Strips comment leaders (`/`, `!`, `*`, `<`) and surrounding whitespace
/// from one physical line of comment text.
std::string trimCommentLine(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && (S[B] == ' ' || S[B] == '\t'))
    ++B;
  while (B < E && (S[B] == '/' || S[B] == '!' || S[B] == '*' || S[B] == '<'))
    ++B;
  while (B < E && (S[B] == ' ' || S[B] == '\t'))
    ++B;
  while (E > B && (S[E - 1] == ' ' || S[E - 1] == '\t' || S[E - 1] == '\r' ||
                   S[E - 1] == '*' || S[E - 1] == '/'))
    --E;
  return std::string(S.substr(B, E - B));
}

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Src) : Src(Src) {}

  LexedFile run() {
    while (Pos < Src.size())
      step();
    return std::move(Out);
  }

private:
  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  /// Line number of the last emitted code token; used to decide whether a
  /// comment is trailing (FollowsCode).
  uint32_t LastTokenLine = 0;
  /// True once a non-whitespace, non-comment character has been seen on the
  /// current line — gates preprocessor detection (`#` must lead its line).
  bool LineHasCode = false;
  LexedFile Out;

  char cur() const { return Src[Pos]; }
  char peek(size_t N = 1) const {
    return Pos + N < Src.size() ? Src[Pos + N] : '\0';
  }

  void advance() {
    if (Src[Pos] == '\n') {
      ++Line;
      Col = 1;
      LineHasCode = false;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void emit(Tok Kind, std::string Text, uint32_t L, uint32_t C) {
    Out.Tokens.push_back({Kind, std::move(Text), L, C});
    LastTokenLine = L;
  }

  void step() {
    char C = cur();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      return;
    }
    if (C == '/' && peek() == '/') {
      lexLineComment();
      return;
    }
    if (C == '/' && peek() == '*') {
      lexBlockComment();
      return;
    }
    if (C == '#' && !LineHasCode) {
      lexPreprocessor();
      return;
    }
    LineHasCode = true;
    if (isIdentStart(C)) {
      lexIdentOrRawString();
      return;
    }
    if (isDigit(C)) {
      lexNumber();
      return;
    }
    if (C == '"') {
      lexString();
      return;
    }
    if (C == '\'') {
      lexCharLit();
      return;
    }
    lexPunct();
  }

  void lexLineComment() {
    uint32_t L = Line;
    bool Follows = (LastTokenLine == L);
    size_t Start = Pos;
    while (Pos < Src.size() && cur() != '\n')
      advance();
    Out.Comments.push_back(
        {trimCommentLine(Src.substr(Start, Pos - Start)), L, Follows});
  }

  void lexBlockComment() {
    uint32_t L = Line;
    bool Follows = (LastTokenLine == L);
    advance(); // '/'
    advance(); // '*'
    size_t LineStart = Pos;
    uint32_t CurLine = L;
    auto flush = [&](size_t End) {
      std::string T = trimCommentLine(Src.substr(LineStart, End - LineStart));
      if (!T.empty() || CurLine == L)
        Out.Comments.push_back({std::move(T), CurLine, CurLine == L && Follows});
    };
    while (Pos < Src.size()) {
      if (cur() == '*' && peek() == '/') {
        flush(Pos);
        advance();
        advance();
        return;
      }
      if (cur() == '\n') {
        flush(Pos);
        advance();
        CurLine = Line;
        LineStart = Pos;
        continue;
      }
      advance();
    }
    flush(Pos); // Unterminated: keep what we have.
  }

  /// Swallows a whole preprocessor directive, honoring `\` line
  /// continuations and embedded block comments. Nothing is emitted.
  void lexPreprocessor() {
    while (Pos < Src.size()) {
      char C = cur();
      if (C == '\\' && (peek() == '\n' || (peek() == '\r' && peek(2) == '\n'))) {
        advance(); // backslash
        while (Pos < Src.size() && cur() != '\n')
          advance();
        if (Pos < Src.size())
          advance(); // newline: directive continues
        continue;
      }
      if (C == '/' && peek() == '*') {
        lexBlockComment();
        continue;
      }
      if (C == '/' && peek() == '/') {
        lexLineComment();
        return; // a line comment ends the directive
      }
      if (C == '\n') {
        advance();
        return;
      }
      advance();
    }
  }

  void lexIdentOrRawString() {
    uint32_t L = Line, C = Col;
    size_t Start = Pos;
    while (Pos < Src.size() && isIdentBody(cur()))
      advance();
    std::string_view Text = Src.substr(Start, Pos - Start);
    // Raw-string literal: R"..." with an optional encoding prefix. The whole
    // literal becomes a single opaque String token.
    if (Pos < Src.size() && cur() == '"' &&
        (Text == "R" || Text == "u8R" || Text == "uR" || Text == "LR")) {
      lexRawString(L, C);
      return;
    }
    emit(Tok::Ident, std::string(Text), L, C);
  }

  void lexRawString(uint32_t L, uint32_t C) {
    advance(); // opening quote
    size_t DelimStart = Pos;
    while (Pos < Src.size() && cur() != '(')
      advance();
    std::string Closer;
    Closer.reserve(Pos - DelimStart + 2);
    Closer.push_back(')');
    Closer.append(Src.substr(DelimStart, Pos - DelimStart));
    Closer.push_back('"');
    while (Pos < Src.size()) {
      if (cur() == ')' && Src.compare(Pos, Closer.size(), Closer) == 0) {
        for (size_t I = 0; I < Closer.size(); ++I)
          advance();
        break;
      }
      advance();
    }
    emit(Tok::String, "<raw-string>", L, C);
  }

  void lexString() {
    uint32_t L = Line, C = Col;
    advance(); // opening quote
    while (Pos < Src.size() && cur() != '"' && cur() != '\n') {
      if (cur() == '\\' && Pos + 1 < Src.size())
        advance();
      advance();
    }
    if (Pos < Src.size() && cur() == '"')
      advance();
    emit(Tok::String, "<string>", L, C);
  }

  void lexCharLit() {
    uint32_t L = Line, C = Col;
    advance(); // opening quote
    while (Pos < Src.size() && cur() != '\'' && cur() != '\n') {
      if (cur() == '\\' && Pos + 1 < Src.size())
        advance();
      advance();
    }
    if (Pos < Src.size() && cur() == '\'')
      advance();
    emit(Tok::CharLit, "<char>", L, C);
  }

  void lexNumber() {
    uint32_t L = Line, C = Col;
    size_t Start = Pos;
    while (Pos < Src.size()) {
      char Ch = cur();
      if (isIdentBody(Ch) || Ch == '.') {
        advance();
        continue;
      }
      // Digit separator: 50'000.
      if (Ch == '\'' && isIdentBody(peek())) {
        advance();
        advance();
        continue;
      }
      // Exponent sign: 1e-5, 0x1p+3.
      if ((Ch == '+' || Ch == '-') && Pos > Start) {
        char Prev = Src[Pos - 1];
        if (Prev == 'e' || Prev == 'E' || Prev == 'p' || Prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    emit(Tok::Number, std::string(Src.substr(Start, Pos - Start)), L, C);
  }

  void lexPunct() {
    uint32_t L = Line, C = Col;
    char Ch = cur();
    // Only `::` and `->` are combined; everything else is one char per
    // token (see Lexer.h).
    if (Ch == ':' && peek() == ':') {
      advance();
      advance();
      emit(Tok::Punct, "::", L, C);
      return;
    }
    if (Ch == '-' && peek() == '>') {
      advance();
      advance();
      emit(Tok::Punct, "->", L, C);
      return;
    }
    advance();
    emit(Tok::Punct, std::string(1, Ch), L, C);
  }
};

} // namespace

LexedFile lex(std::string_view Source) { return LexerImpl(Source).run(); }

} // namespace analysis
} // namespace dyndist
