//===- Linter.cpp - Determinism & phase-safety rule engine ----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Implementation layout (one pass per concern, all per-file except D5):
//
//   commentPass     suppressions + phase markers + lane regions (S1 checks)
//   containerPass   container declarations: unordered vars (D1 decl check),
//                   pointer-element sequences, pointer-keyed ordered
//                   containers (D3), comparator-less pointer sorts (D3)
//   rulePass        linear token checks: D1 iteration, D2 sources, D4 RNG
//   structuralPass  scope tracker: function defs/decls, classes, call sites
//   attachMarkers   bind markers to functions/classes (M1 checks)
//   phasePass       global BFS over the name-based call graph (D5)
//
// The scanner is deliberately token-level, not a parser: it recognizes just
// enough structure (balanced groups, function signatures, ctor-init lists,
// class bodies) to attribute calls to enclosing functions. Anything it
// cannot classify degrades to "skip one token", never to a crash or a
// finding.
//
//===----------------------------------------------------------------------===//

#include "dyndist/analysis/Linter.h"

#include "dyndist/analysis/Lexer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

namespace dyndist {
namespace analysis {

namespace {

//===----------------------------------------------------------------------===//
// Rule catalog
//===----------------------------------------------------------------------===//

const std::vector<RuleInfo> Catalog = {
    {"D1", Severity::Error,
     "iteration over an unordered container / unproven unordered "
     "declaration in src/",
     "keyed lookup is legal; iterate a sorted snapshot or FlatMap instead, "
     "or prove the container is lookup-only with allow(D1) + reason"},
    {"D2", Severity::Error,
     "nondeterminism source banned in src/ (rand, time, wall clock, thread "
     "id, getenv)",
     "derive all variability from the seeded SplitMix64 stream; config "
     "reads belong in entry points carrying allow(D2) + reason"},
    {"D3", Severity::Error, "ordering keyed by raw pointer value",
     "key by a stable id (ProcessId, slot index) or pass an explicit "
     "by-value comparator"},
    {"D4", Severity::Error,
     "raw std RNG engine outside src/support/Random.cpp",
     "use dyndist::Rng / SplitMix64 positional derivation "
     "(support/Random.h)"},
    {"D5", Severity::Error,
     "serial-only call reachable from a lane-phase region",
     "move the call into a serial barrier sub-phase, or pre-stage the data "
     "before the parallel fan-out"},
    {"S1", Severity::Error, "malformed dyndist-lint suppression",
     "grammar: // dyndist-lint: allow(D1[,D2]) <reason - mandatory>"},
    {"M1", Severity::Error, "phase marker could not be applied",
     "place DYNDIST_* markers directly above a function or class "
     "declaration; region BEGIN/END must pair up inside one file"},
};

Severity severityOf(std::string_view Rule) {
  for (const RuleInfo &R : Catalog)
    if (R.Id == Rule)
      return R.DefaultSeverity;
  return Severity::Error;
}

std::string hintOf(std::string_view Rule) {
  for (const RuleInfo &R : Catalog)
    if (R.Id == Rule)
      return std::string(R.FixHint);
  return {};
}

bool isKnownRule(std::string_view Id) {
  for (const RuleInfo &R : Catalog)
    if (R.Id == Id)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Name tables
//===----------------------------------------------------------------------===//

const std::set<std::string, std::less<>> UnorderedTypeNames = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string, std::less<>> OrderedAssocNames = {
    "map", "set", "multimap", "multiset", "FlatMap", "less"};

const std::set<std::string, std::less<>> PtrSeqNames = {"vector", "deque",
                                                        "array", "InlineVec"};

/// Only the begin family: every iteration needs a begin, while a bare
/// `.end()` is the legal sentinel of `find() != end()` lookups.
const std::set<std::string, std::less<>> IterMemberNames = {
    "begin", "cbegin", "rbegin", "crbegin"};

const std::set<std::string, std::less<>> RngEngineNames = {
    "mt19937",        "mt19937_64",   "minstd_rand",
    "minstd_rand0",   "random_device", "default_random_engine",
    "knuth_b",        "ranlux24",     "ranlux48",
    "ranlux24_base",  "ranlux48_base"};

/// Identifiers that look like calls but are control flow / operators.
const std::set<std::string, std::less<>> NonCallKeywords = {
    "if",     "for",       "while",    "switch",   "return",  "sizeof",
    "alignof", "alignas",  "decltype", "noexcept", "catch",   "new",
    "delete", "throw",     "case",     "default",  "do",      "else",
    "goto",   "defined",   "typeid",   "co_await", "co_return",
    "co_yield", "requires", "static_assert", "assert"};

/// The only file allowed to name raw std RNG engines (D4).
constexpr std::string_view RandomImplFile = "src/support/Random.cpp";

/// Files allowed to name std::chrono wall clocks inside src/ (D2). Empty by
/// design: additions go through code review, one path per line.
const std::set<std::string, std::less<>> ClockAllowlistFiles = {};

//===----------------------------------------------------------------------===//
// Internal data model
//===----------------------------------------------------------------------===//

enum class Tree : uint8_t { Src, Tools, Bench, Tests, Other };

Tree treeOf(std::string_view Path) {
  auto Slash = Path.find('/');
  std::string_view Head = Slash == std::string_view::npos
                              ? Path
                              : Path.substr(0, Slash);
  if (Head == "src")
    return Tree::Src;
  if (Head == "tools")
    return Tree::Tools;
  if (Head == "bench")
    return Tree::Bench;
  if (Head == "tests")
    return Tree::Tests;
  return Tree::Other;
}

struct SuppressionRec {
  uint32_t TargetLine = 0;
  std::set<std::string> Rules;
  std::string Reason;
};

enum class MarkerKind : uint8_t { SerialOnly, SerialContext, LanePhase };

struct MarkerRec {
  MarkerKind Kind;
  uint32_t CommentLine = 0;
  uint32_t TargetLine = 0;
  std::string Reason;
};

struct RegionRec {
  uint32_t BeginLine = 0;
  uint32_t EndLine = 0;
};

struct CallRec {
  std::string Name;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

struct FnRec {
  std::string Name;
  std::string Qual; ///< Immediate `Class::` qualifier of out-of-line defs.
  uint32_t SigLine = 0;
  uint32_t BodyBegin = 0;
  uint32_t BodyEnd = 0;
  bool IsDef = false;
  bool SerialOnly = false;
  bool SerialCtx = false;
  bool LanePhase = false;
  std::vector<CallRec> Calls;
};

struct ClsRec {
  std::string Name;
  uint32_t HeadLine = 0;
  uint32_t BodyBegin = 0;
  uint32_t BodyEnd = 0;
  // Class-level phase markers; also applied to out-of-line member
  // definitions (matched by `Class::` qualifier) in phasePass.
  bool SerialOnly = false;
  bool SerialCtx = false;
  bool LanePhase = false;
};

struct FileData {
  std::string Path;
  Tree T = Tree::Other;
  LexedFile Lx;
  std::set<std::string> UnorderedVars; ///< Names of unordered-typed vars.
  std::set<std::string> PtrVars;       ///< Names of pointer-element seqs.
  std::vector<SuppressionRec> Sups;
  std::vector<MarkerRec> Markers;
  std::vector<RegionRec> Regions;
  std::vector<FnRec> Fns;
  std::vector<ClsRec> Classes;
};

//===----------------------------------------------------------------------===//
// Small token helpers
//===----------------------------------------------------------------------===//

/// \p I must index a `(`, `[` or `{` token. Returns the index one past the
/// matching closer (mismatched closers are tolerated; end-of-file closes
/// everything).
size_t skipGroup(const std::vector<Token> &T, size_t I) {
  size_t Depth = 0;
  for (size_t J = I; J < T.size(); ++J) {
    if (T[J].Kind != Tok::Punct || T[J].Text.size() != 1)
      continue;
    char C = T[J].Text[0];
    if (C == '(' || C == '[' || C == '{')
      ++Depth;
    else if (C == ')' || C == ']' || C == '}') {
      if (Depth > 0 && --Depth == 0)
        return J + 1;
    }
  }
  return T.size();
}

struct AngleSkip {
  bool Ok = false;
  size_t End = 0;
};

/// \p I must index a `<`. Attempts to balance template angles; bails (Ok =
/// false) on tokens that prove this `<` is a comparison (`;`, `?`, a brace,
/// an unmatched group closer) or after a 512-token span.
AngleSkip skipAngles(const std::vector<Token> &T, size_t I) {
  int Depth = 0;
  for (size_t J = I; J < T.size() && J < I + 512; ++J) {
    if (T[J].Kind != Tok::Punct)
      continue;
    const std::string &S = T[J].Text;
    if (S == "<") {
      ++Depth;
    } else if (S == ">") {
      if (--Depth == 0)
        return {true, J + 1};
    } else if (S == "(" || S == "[") {
      J = skipGroup(T, J) - 1;
    } else if (S == ";" || S == "?" || S == "{" || S == "}" || S == ")" ||
               S == "]") {
      return {false, I + 1};
    }
  }
  return {false, I + 1};
}

std::string trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && (S[B] == ' ' || S[B] == '\t'))
    ++B;
  while (E > B && (S[E - 1] == ' ' || S[E - 1] == '\t'))
    --E;
  return std::string(S.substr(B, E - B));
}

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

/// First token line strictly greater than \p Line, or 0 if none — the
/// "next code line" a comment-only suppression/marker applies to.
uint32_t nextCodeLine(const std::vector<Token> &T, uint32_t Line) {
  for (const Token &Tk : T)
    if (Tk.Line > Line)
      return Tk.Line;
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Linter::Impl
//===----------------------------------------------------------------------===//

struct Linter::Impl {
  std::vector<std::pair<std::string, std::string>> Sources;
  std::vector<std::string> EnabledRules;

  std::vector<Finding> Findings;

  void emitFinding(std::string Rule, const std::string &File, uint32_t Line,
                   uint32_t Col, std::string Message) {
    Finding F;
    F.Sev = severityOf(Rule);
    F.FixHint = hintOf(Rule);
    F.Rule = std::move(Rule);
    F.File = File;
    F.Line = Line;
    F.Col = Col;
    F.Message = std::move(Message);
    Findings.push_back(std::move(F));
  }

  void commentPass(FileData &FD);
  void containerPass(FileData &FD);
  void rulePass(FileData &FD);
  void structuralPass(FileData &FD);
  size_t tryFunction(FileData &FD, size_t I, bool &PushedFn);
  void attachMarkers(FileData &FD);
  void phasePass(std::vector<FileData> &Files);
  void applySuppressions(std::vector<FileData> &Files);

  LintResult run();
};

//===----------------------------------------------------------------------===//
// Pass 1: comments — suppressions, markers, regions
//===----------------------------------------------------------------------===//

void Linter::Impl::commentPass(FileData &FD) {
  std::vector<uint32_t> RegionStack; // BEGIN comment lines awaiting END
  for (const Comment &C : FD.Lx.Comments) {
    const std::string &Text = C.Text;
    if (startsWith(Text, "dyndist-lint:")) {
      std::string Rest = trim(Text.substr(std::string_view("dyndist-lint:").size()));
      if (!startsWith(Rest, "allow(")) {
        emitFinding("S1", FD.Path, C.Line, 1,
                    "unrecognized dyndist-lint directive (only 'allow(...)' "
                    "exists)");
        continue;
      }
      size_t Close = Rest.find(')');
      if (Close == std::string::npos) {
        emitFinding("S1", FD.Path, C.Line, 1,
                    "suppression is missing the closing ')'");
        continue;
      }
      SuppressionRec S;
      bool BadId = false;
      std::string Ids = Rest.substr(6, Close - 6);
      size_t P = 0;
      while (P <= Ids.size()) {
        size_t Comma = Ids.find(',', P);
        std::string Id =
            trim(Ids.substr(P, Comma == std::string::npos ? std::string::npos
                                                          : Comma - P));
        if (!Id.empty()) {
          if (!isKnownRule(Id)) {
            emitFinding("S1", FD.Path, C.Line, 1,
                        "unknown rule id '" + Id + "' in allow(...)");
            BadId = true;
          } else if (Id == "S1" || Id == "M1") {
            emitFinding("S1", FD.Path, C.Line, 1,
                        "grammar diagnostics (" + Id +
                            ") cannot be suppressed");
            BadId = true;
          } else {
            S.Rules.insert(Id);
          }
        }
        if (Comma == std::string::npos)
          break;
        P = Comma + 1;
      }
      std::string Reason = trim(Rest.substr(Close + 1));
      while (!Reason.empty() &&
             (Reason[0] == '-' || Reason[0] == ':' || Reason[0] == ' '))
        Reason.erase(Reason.begin());
      if (Reason.empty()) {
        emitFinding("S1", FD.Path, C.Line, 1,
                    "suppression is missing its mandatory reason");
        continue;
      }
      if (S.Rules.empty()) {
        if (!BadId)
          emitFinding("S1", FD.Path, C.Line, 1,
                      "allow(...) lists no rule ids");
        continue;
      }
      if (BadId)
        continue;
      S.Reason = std::move(Reason);
      S.TargetLine =
          C.FollowsCode ? C.Line : nextCodeLine(FD.Lx.Tokens, C.Line);
      if (S.TargetLine != 0)
        FD.Sups.push_back(std::move(S));
      continue;
    }

    // Phase markers. Longest token first so LANE_REGION_* never matches as
    // a prefix of something shorter.
    struct MarkerName {
      std::string_view Token;
      int Kind; // 0..2 = MarkerKind, 3 = region begin, 4 = region end
    };
    static const MarkerName Names[] = {
        {"DYNDIST_LANE_REGION_BEGIN", 3},
        {"DYNDIST_LANE_REGION_END", 4},
        {"DYNDIST_SERIAL_CONTEXT", 1},
        {"DYNDIST_SERIAL_ONLY", 0},
        {"DYNDIST_LANE_PHASE", 2},
    };
    for (const MarkerName &MN : Names) {
      if (!startsWith(Text, MN.Token))
        continue;
      std::string Rest = Text.substr(MN.Token.size());
      // Reject identifier-ish continuations (DYNDIST_SERIAL_ONLY_FOO).
      if (!Rest.empty() && Rest[0] != ' ' && Rest[0] != '\t' &&
          Rest[0] != ':' && Rest[0] != '-' && Rest[0] != '.')
        continue;
      std::string Reason = trim(Rest);
      while (!Reason.empty() &&
             (Reason[0] == ':' || Reason[0] == '-' || Reason[0] == ' '))
        Reason.erase(Reason.begin());
      if (MN.Kind == 3) {
        RegionStack.push_back(C.Line);
      } else if (MN.Kind == 4) {
        if (RegionStack.empty()) {
          emitFinding("M1", FD.Path, C.Line, 1,
                      "DYNDIST_LANE_REGION_END without a matching BEGIN");
        } else {
          FD.Regions.push_back({RegionStack.back(), C.Line});
          RegionStack.pop_back();
        }
      } else {
        MarkerRec M;
        M.Kind = static_cast<MarkerKind>(MN.Kind);
        M.CommentLine = C.Line;
        M.TargetLine =
            C.FollowsCode ? C.Line : nextCodeLine(FD.Lx.Tokens, C.Line);
        M.Reason = std::move(Reason);
        FD.Markers.push_back(std::move(M));
      }
      break;
    }
  }
  for (uint32_t L : RegionStack)
    emitFinding("M1", FD.Path, L, 1,
                "DYNDIST_LANE_REGION_BEGIN without a matching END");
}

//===----------------------------------------------------------------------===//
// Pass 2: container declarations — D1 decl check, D3, pointer sequences
//===----------------------------------------------------------------------===//

void Linter::Impl::containerPass(FileData &FD) {
  const std::vector<Token> &T = FD.Lx.Tokens;

  // Alias pre-pass: `using X = ...unordered_map<...>...;` makes X a
  // trigger name for the declaration scan below.
  std::set<std::string> UnorderedAliases;
  for (size_t I = 0; I + 3 < T.size(); ++I) {
    if (!T[I].isIdent("using") || T[I + 1].Kind != Tok::Ident ||
        !T[I + 2].is("="))
      continue;
    for (size_t J = I + 3; J < T.size() && !T[J].is(";"); ++J)
      if (T[J].Kind == Tok::Ident && UnorderedTypeNames.count(T[J].Text)) {
        UnorderedAliases.insert(T[I + 1].Text);
        break;
      }
  }

  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != Tok::Ident)
      continue;
    const std::string &Name = T[I].Text;
    bool IsUnordered =
        UnorderedTypeNames.count(Name) || UnorderedAliases.count(Name);
    bool IsOrderedAssoc = OrderedAssocNames.count(Name) != 0;
    bool IsPtrSeq = PtrSeqNames.count(Name) != 0;
    if (!IsUnordered && !IsOrderedAssoc && !IsPtrSeq)
      continue;
    if (I > 0 && (T[I - 1].is(".") || T[I - 1].is("->")))
      continue; // member access, not a type name

    // Template argument list (required for builtin names, optional for
    // aliases). Collect top-level argument token ranges.
    size_t AfterType = I + 1;
    std::vector<std::pair<size_t, size_t>> Args; // [first, last] inclusive
    if (I + 1 < T.size() && T[I + 1].is("<")) {
      AngleSkip A = skipAngles(T, I + 1);
      if (!A.Ok)
        continue; // comparison, not a template
      AfterType = A.End;
      int Depth = 0;
      size_t ArgBegin = I + 2;
      for (size_t J = I + 1; J < A.End; ++J) {
        if (T[J].Kind != Tok::Punct)
          continue;
        const std::string &S = T[J].Text;
        if (S == "<")
          ++Depth;
        else if (S == ">") {
          if (--Depth == 0 && J > ArgBegin)
            Args.push_back({ArgBegin, J - 1});
        } else if (S == "(" || S == "[") {
          J = skipGroup(T, J) - 1;
        } else if (S == "," && Depth == 1) {
          if (J > ArgBegin)
            Args.push_back({ArgBegin, J - 1});
          ArgBegin = J + 1;
        }
      }
    } else if (!(IsUnordered && UnorderedAliases.count(Name))) {
      continue; // builtin container name without template args: not a type
    }

    bool FirstArgIsPtr =
        !Args.empty() && T[Args.front().second].is("*");

    if (IsOrderedAssoc && FirstArgIsPtr)
      emitFinding("D3", FD.Path, T[I].Line, T[I].Col,
                  "ordered container '" + Name +
                      "' keyed by a raw pointer: iteration order follows "
                      "allocator addresses, which vary run to run");

    // Variable / member name after the type (through refs and cv).
    size_t K = AfterType;
    while (K < T.size() &&
           (T[K].is("*") || T[K].is("&") || T[K].isIdent("const")))
      ++K;
    if (K + 1 >= T.size() || T[K].Kind != Tok::Ident)
      continue;
    const Token &Term = T[K + 1];
    bool IsDecl = Term.is(";") || Term.is("=") || Term.is("{") ||
                  Term.is(",") || Term.is(")") || Term.is("[");
    if (!IsDecl)
      continue;
    bool IsParam = Term.is(")") || Term.is(",");
    if (IsUnordered) {
      FD.UnorderedVars.insert(T[K].Text);
      if (FD.T == Tree::Src && !IsParam)
        emitFinding("D1", FD.Path, T[I].Line, T[I].Col,
                    "unordered container '" + T[K].Text +
                        "' declared in src/: hash iteration order must "
                        "never reach a schedule or serialized artifact");
    }
    if (IsPtrSeq && FirstArgIsPtr)
      FD.PtrVars.insert(T[K].Text);
  }

  // Comparator-less sorts of pointer sequences (the second half of D3).
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (T[I].Kind != Tok::Ident || !T[I + 1].is("("))
      continue;
    const std::string &Name = T[I].Text;
    size_t MaxNoCompArgs;
    if (Name == "sort" || Name == "stable_sort")
      MaxNoCompArgs = 2;
    else if (Name == "partial_sort" || Name == "nth_element")
      MaxNoCompArgs = 3;
    else
      continue;
    if (I > 0 && (T[I - 1].is(".") || T[I - 1].is("->")))
      continue; // Container.sort() members are out of scope here
    size_t Close = skipGroup(T, I + 1);
    size_t NArgs = 1;
    bool TouchesPtrVar = false;
    size_t Depth = 0;
    for (size_t J = I + 1; J < Close; ++J) {
      if (T[J].Kind == Tok::Punct && T[J].Text.size() == 1) {
        char C = T[J].Text[0];
        if (C == '(' || C == '[' || C == '{')
          ++Depth;
        else if (C == ')' || C == ']' || C == '}')
          --Depth;
        else if (C == ',' && Depth == 1)
          ++NArgs;
      } else if (T[J].Kind == Tok::Ident && FD.PtrVars.count(T[J].Text)) {
        TouchesPtrVar = true;
      }
    }
    if (TouchesPtrVar && NArgs <= MaxNoCompArgs)
      emitFinding("D3", FD.Path, T[I].Line, T[I].Col,
                  "'" + Name +
                      "' over a pointer sequence without a comparator "
                      "orders by address, which varies run to run");
  }
}

//===----------------------------------------------------------------------===//
// Pass 3: linear token rules — D1 iteration, D2, D4
//===----------------------------------------------------------------------===//

void Linter::Impl::rulePass(FileData &FD) {
  const std::vector<Token> &T = FD.Lx.Tokens;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != Tok::Ident)
      continue;
    const std::string &Text = T[I].Text;

    // --- D1: iteration over a tracked unordered variable ------------------
    if (FD.UnorderedVars.count(Text) && I + 3 < T.size() &&
        (T[I + 1].is(".") || T[I + 1].is("->")) &&
        T[I + 2].Kind == Tok::Ident && IterMemberNames.count(T[I + 2].Text) &&
        T[I + 3].is("("))
      emitFinding("D1", FD.Path, T[I].Line, T[I].Col,
                  "iterator over unordered container '" + Text +
                      "': visit order depends on the hash function and "
                      "load factor");
    if (IterMemberNames.count(Text) && I + 3 < T.size() && T[I + 1].is("(") &&
        T[I + 2].Kind == Tok::Ident &&
        FD.UnorderedVars.count(T[I + 2].Text) && T[I + 3].is(")"))
      emitFinding("D1", FD.Path, T[I + 2].Line, T[I + 2].Col,
                  "iterator over unordered container '" + T[I + 2].Text +
                      "': visit order depends on the hash function and "
                      "load factor");
    if (Text == "for" && I + 1 < T.size() && T[I + 1].is("(")) {
      size_t Close = skipGroup(T, I + 1);
      // Find the first top-level ':' (range-for) or ';' (classic for).
      size_t Depth = 0;
      size_t RangeExpr = 0;
      for (size_t J = I + 2; J + 1 < Close; ++J) {
        if (T[J].Kind != Tok::Punct)
          continue;
        const std::string &S = T[J].Text;
        if (S.size() == 1) {
          char C = S[0];
          if (C == '(' || C == '[' || C == '{')
            ++Depth;
          else if (C == ')' || C == ']' || C == '}')
            --Depth;
          else if (Depth == 0 && C == ';')
            break; // classic for
          else if (Depth == 0 && C == ':') {
            RangeExpr = J + 1;
            break;
          }
        }
      }
      if (RangeExpr != 0)
        for (size_t J = RangeExpr; J + 1 < Close; ++J)
          if (T[J].Kind == Tok::Ident && FD.UnorderedVars.count(T[J].Text)) {
            emitFinding("D1", FD.Path, T[J].Line, T[J].Col,
                        "range-for over unordered container '" + T[J].Text +
                            "': visit order depends on the hash function "
                            "and load factor");
            break;
          }
    }

    // --- D2: nondeterminism sources, src/ only ----------------------------
    if (FD.T == Tree::Src) {
      bool MemberAccess =
          I > 0 && (T[I - 1].is(".") || T[I - 1].is("->"));
      bool QualifiedNonStd = I > 1 && T[I - 1].is("::") &&
                             !(T[I - 2].isIdent("std"));
      bool NextParen = I + 1 < T.size() && T[I + 1].is("(");
      if ((Text == "rand" || Text == "srand") && NextParen && !MemberAccess &&
          !QualifiedNonStd)
        emitFinding("D2", FD.Path, T[I].Line, T[I].Col,
                    "'" + Text +
                        "' draws from hidden global state; schedules must "
                        "derive from the run seed alone");
      if ((Text == "time" || Text == "clock") && NextParen && !MemberAccess &&
          !QualifiedNonStd)
        emitFinding("D2", FD.Path, T[I].Line, T[I].Col,
                    "'" + Text +
                        "()' reads wall-clock state, which differs every "
                        "run");
      if ((Text == "steady_clock" || Text == "system_clock" ||
           Text == "high_resolution_clock") &&
          !ClockAllowlistFiles.count(FD.Path))
        emitFinding("D2", FD.Path, T[I].Line, T[I].Col,
                    "std::chrono::" + Text +
                        " in src/: simulated time (SimTime) is the only "
                        "clock the kernel may observe");
      if (Text == "get_id" && NextParen)
        emitFinding("D2", FD.Path, T[I].Line, T[I].Col,
                    "thread ids vary across runs and thread counts; key "
                    "work by lane index instead");
      if (Text == "getenv" && NextParen && !MemberAccess && !QualifiedNonStd)
        emitFinding("D2", FD.Path, T[I].Line, T[I].Col,
                    "'getenv' makes behavior depend on ambient environment; "
                    "only designated config entry points may read it");
    }

    // --- D4: raw std RNG engines ------------------------------------------
    if (RngEngineNames.count(Text) && FD.Path != RandomImplFile)
      emitFinding("D4", FD.Path, T[I].Line, T[I].Col,
                  "raw RNG engine 'std::" + Text +
                      "' outside src/support/Random.cpp breaks positional "
                      "seed derivation");
  }
}

//===----------------------------------------------------------------------===//
// Pass 4: structure — functions, classes, calls
//===----------------------------------------------------------------------===//

namespace {
struct ScopeEnt {
  char Kind; // 'n' namespace, 'c' class, 'f' function, 'b' block
  size_t Idx = 0;
};
} // namespace

void Linter::Impl::structuralPass(FileData &FD) {
  const std::vector<Token> &T = FD.Lx.Tokens;
  std::vector<ScopeEnt> Stack;

  auto atDeclScope = [&Stack] {
    for (const ScopeEnt &S : Stack)
      if (S.Kind == 'f' || S.Kind == 'b')
        return false;
    return true;
  };
  auto currentFn = [&]() -> FnRec * {
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
      if (It->Kind == 'f')
        return &FD.Fns[It->Idx];
    return nullptr;
  };

  size_t I = 0;
  const size_t N = T.size();
  while (I < N) {
    const Token &Tk = T[I];
    if (Tk.Kind == Tok::Punct && Tk.Text == "}") {
      if (!Stack.empty()) {
        const ScopeEnt &S = Stack.back();
        if (S.Kind == 'f')
          FD.Fns[S.Idx].BodyEnd = Tk.Line;
        else if (S.Kind == 'c')
          FD.Classes[S.Idx].BodyEnd = Tk.Line;
        Stack.pop_back();
      }
      ++I;
      continue;
    }

    if (!atDeclScope()) {
      // Function-body scope: record calls, push plain blocks.
      if (Tk.Kind == Tok::Punct && Tk.Text == "{") {
        Stack.push_back({'b', 0});
        ++I;
        continue;
      }
      if (Tk.Kind == Tok::Ident && I + 1 < N && T[I + 1].is("(") &&
          !NonCallKeywords.count(Tk.Text)) {
        if (FnRec *F = currentFn())
          F->Calls.push_back({Tk.Text, Tk.Line, Tk.Col});
      }
      ++I;
      continue;
    }

    // --- Declaration scope ------------------------------------------------
    if (Tk.isIdent("namespace")) {
      size_t J = I + 1;
      while (J < N && (T[J].Kind == Tok::Ident || T[J].is("::")))
        ++J;
      if (J < N && T[J].is("=")) { // namespace alias
        while (J < N && !T[J].is(";"))
          ++J;
        I = J + 1;
        continue;
      }
      if (J < N && T[J].is("{")) {
        Stack.push_back({'n', 0});
        I = J + 1;
        continue;
      }
      I = J;
      continue;
    }
    if (Tk.isIdent("extern") && I + 2 < N && T[I + 1].Kind == Tok::String &&
        T[I + 2].is("{")) {
      Stack.push_back({'n', 0});
      I += 3;
      continue;
    }
    if (Tk.isIdent("template") && I + 1 < N && T[I + 1].is("<")) {
      AngleSkip A = skipAngles(T, I + 1);
      I = A.Ok ? A.End : I + 2;
      continue;
    }
    if (Tk.isIdent("enum")) {
      size_t J = I + 1;
      while (J < N && !T[J].is("{") && !T[J].is(";"))
        ++J;
      I = (J < N && T[J].is("{")) ? skipGroup(T, J) : J + 1;
      continue;
    }
    if (Tk.isIdent("using") || Tk.isIdent("typedef")) {
      size_t J = I + 1;
      while (J < N && !T[J].is(";"))
        ++J;
      I = J + 1;
      continue;
    }
    if (Tk.isIdent("class") || Tk.isIdent("struct") || Tk.isIdent("union")) {
      uint32_t HeadLine = Tk.Line;
      std::string LastIdent;
      size_t J = I + 1;
      bool SawBase = false;
      while (J < N && !T[J].is("{") && !T[J].is(";")) {
        if (T[J].is("[")) {
          J = skipGroup(T, J);
          continue;
        }
        if (T[J].is("<")) {
          AngleSkip A = skipAngles(T, J);
          J = A.Ok ? A.End : J + 1;
          continue;
        }
        if (T[J].Kind == Tok::Ident && !SawBase &&
            T[J].Text != "final" && T[J].Text != "alignas")
          LastIdent = T[J].Text;
        if (T[J].is(":"))
          SawBase = true;
        ++J;
      }
      if (J < N && T[J].is("{")) {
        FD.Classes.push_back({LastIdent, HeadLine, T[J].Line, 0});
        Stack.push_back({'c', FD.Classes.size() - 1});
        I = J + 1;
      } else {
        I = J + 1; // forward declaration
      }
      continue;
    }
    if (Tk.Kind == Tok::Ident && I + 1 < N && T[I + 1].is("(") &&
        !NonCallKeywords.count(Tk.Text)) {
      bool PushedFn = false;
      size_t Next = tryFunction(FD, I, PushedFn);
      if (PushedFn)
        Stack.push_back({'f', FD.Fns.size() - 1});
      I = Next;
      continue;
    }
    if (Tk.Kind == Tok::Punct && Tk.Text == "{") {
      Stack.push_back({'b', 0}); // brace initializer at decl scope
      ++I;
      continue;
    }
    ++I;
  }
}

/// Called with T[I] an identifier directly followed by '('. Recognizes
/// function declarations and definitions; returns the index scanning should
/// resume at. On a definition, appends an FnRec with IsDef and sets
/// \p PushedFn so the caller opens a function scope at the body brace.
size_t Linter::Impl::tryFunction(FileData &FD, size_t I, bool &PushedFn) {
  const std::vector<Token> &T = FD.Lx.Tokens;
  const size_t N = T.size();
  std::string Name = T[I].Text;
  if (I > 0 && T[I - 1].is("~"))
    Name = "~" + Name;
  std::string Qual;
  if (I >= 2 && T[I - 1].is("::") && T[I - 2].Kind == Tok::Ident)
    Qual = T[I - 2].Text;
  uint32_t SigLine = T[I].Line;

  auto record = [&](bool IsDef, uint32_t BodyBegin) {
    FnRec F;
    F.Name = Name;
    F.Qual = Qual;
    F.SigLine = SigLine;
    F.IsDef = IsDef;
    F.BodyBegin = BodyBegin;
    FD.Fns.push_back(std::move(F));
  };

  size_t J = skipGroup(T, I + 1); // past the parameter list
  while (J < N) {
    const Token &P = T[J];
    if (P.Kind == Tok::Ident) {
      ++J;
      if (J < N && T[J].is("(") &&
          (T[J - 1].isIdent("noexcept") || T[J - 1].isIdent("throw") ||
           T[J - 1].isIdent("requires")))
        J = skipGroup(T, J);
      continue;
    }
    if (P.is("::") || P.is("*") || P.is("&") || P.is("->")) {
      ++J;
      continue;
    }
    if (P.is("<")) {
      AngleSkip A = skipAngles(T, J);
      if (!A.Ok)
        return I + 1;
      J = A.End;
      continue;
    }
    if (P.is("[")) {
      J = skipGroup(T, J);
      continue;
    }
    if (P.is("=")) { // = 0 / = default / = delete
      while (J < N && !T[J].is(";"))
        ++J;
      record(false, 0);
      return J + 1;
    }
    if (P.is(";")) {
      record(false, 0);
      return J + 1;
    }
    if (P.is("{")) {
      record(true, P.Line);
      PushedFn = true;
      return J + 1;
    }
    if (P.is(":")) { // constructor initializer list
      ++J;
      bool SawName = false;
      while (J < N) {
        const Token &Q = T[J];
        if (Q.is("{") && !SawName) {
          record(true, Q.Line);
          PushedFn = true;
          return J + 1;
        }
        if (Q.is("(") || Q.is("{")) {
          J = skipGroup(T, J);
          SawName = false;
          if (J < N && T[J].is(","))
            ++J;
          continue;
        }
        if (Q.Kind == Tok::Ident || Q.is("::")) {
          SawName = true;
          ++J;
          continue;
        }
        if (Q.is("<")) {
          AngleSkip A = skipAngles(T, J);
          if (!A.Ok)
            return I + 1;
          J = A.End;
          continue;
        }
        if (Q.is(".") || Q.is(",")) {
          ++J;
          if (Q.is(","))
            SawName = false;
          continue;
        }
        return I + 1;
      }
      return I + 1;
    }
    return I + 1; // not a function after all
  }
  return I + 1;
}

//===----------------------------------------------------------------------===//
// Pass 5: marker attachment
//===----------------------------------------------------------------------===//

void Linter::Impl::attachMarkers(FileData &FD) {
  constexpr uint32_t Tolerance = 2; // template<> lines, attributes
  for (const MarkerRec &M : FD.Markers) {
    if (M.TargetLine == 0) {
      emitFinding("M1", FD.Path, M.CommentLine, 1,
                  "phase marker has no following declaration to attach to");
      continue;
    }
    // Best function and best class candidate at/just after the target.
    uint32_t BestFnLine = 0, BestClsLine = 0;
    for (const FnRec &F : FD.Fns)
      if (F.SigLine >= M.TargetLine && F.SigLine <= M.TargetLine + Tolerance)
        if (BestFnLine == 0 || F.SigLine < BestFnLine)
          BestFnLine = F.SigLine;
    for (const ClsRec &C : FD.Classes)
      if (C.HeadLine >= M.TargetLine && C.HeadLine <= M.TargetLine + Tolerance)
        if (BestClsLine == 0 || C.HeadLine < BestClsLine)
          BestClsLine = C.HeadLine;

    auto apply = [&M](FnRec &F) {
      switch (M.Kind) {
      case MarkerKind::SerialOnly:
        F.SerialOnly = true;
        break;
      case MarkerKind::SerialContext:
        F.SerialCtx = true;
        break;
      case MarkerKind::LanePhase:
        F.LanePhase = true;
        break;
      }
    };

    // Ties (one-line `struct S { void f(); };`) prefer the class: a marker
    // above a class head is meant for the whole class.
    if (BestClsLine != 0 && (BestFnLine == 0 || BestClsLine <= BestFnLine)) {
      for (ClsRec &C : FD.Classes) {
        if (C.HeadLine != BestClsLine)
          continue;
        switch (M.Kind) {
        case MarkerKind::SerialOnly:
          C.SerialOnly = true;
          break;
        case MarkerKind::SerialContext:
          C.SerialCtx = true;
          break;
        case MarkerKind::LanePhase:
          C.LanePhase = true;
          break;
        }
        for (FnRec &F : FD.Fns)
          if (F.SigLine >= C.BodyBegin &&
              (C.BodyEnd == 0 || F.SigLine <= C.BodyEnd))
            apply(F);
        break;
      }
      continue;
    }
    if (BestFnLine != 0) {
      for (FnRec &F : FD.Fns)
        if (F.SigLine == BestFnLine)
          apply(F);
      continue;
    }
    emitFinding("M1", FD.Path, M.CommentLine, 1,
                "phase marker does not attach to any function or class "
                "declaration (looked at line " +
                    std::to_string(M.TargetLine) + ")");
  }
}

//===----------------------------------------------------------------------===//
// Pass 6: D5 — lane-phase reachability
//===----------------------------------------------------------------------===//

void Linter::Impl::phasePass(std::vector<FileData> &Files) {
  // Name-based serial-only set and definition index, src/ only: the engine
  // and everything it can dispatch into live there; test-local actors are
  // exercised dynamically by the digest tests instead.
  struct SerialOrigin {
    std::string File;
    uint32_t Line = 0;
  };
  // Class-level markers reach out-of-line member definitions in other
  // files via the `Class::` qualifier.
  std::map<std::string, const ClsRec *> MarkedClasses;
  for (const FileData &FD : Files) {
    if (FD.T != Tree::Src)
      continue;
    for (const ClsRec &C : FD.Classes)
      if ((C.SerialOnly || C.SerialCtx || C.LanePhase) && !C.Name.empty())
        MarkedClasses.emplace(C.Name, &C);
  }
  if (!MarkedClasses.empty())
    for (FileData &FD : Files) {
      if (FD.T != Tree::Src)
        continue;
      for (FnRec &F : FD.Fns) {
        if (F.Qual.empty())
          continue;
        auto It = MarkedClasses.find(F.Qual);
        if (It == MarkedClasses.end())
          continue;
        F.SerialOnly |= It->second->SerialOnly;
        F.SerialCtx |= It->second->SerialCtx;
        F.LanePhase |= It->second->LanePhase;
      }
    }

  std::map<std::string, SerialOrigin> SerialOnly;
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> Defs;
  for (size_t FI = 0; FI < Files.size(); ++FI) {
    FileData &FD = Files[FI];
    if (FD.T != Tree::Src)
      continue;
    for (size_t I = 0; I < FD.Fns.size(); ++I) {
      const FnRec &F = FD.Fns[I];
      if (F.SerialOnly && !SerialOnly.count(F.Name))
        SerialOnly[F.Name] = {FD.Path, F.SigLine};
      if (F.IsDef)
        Defs[F.Name].push_back({FI, I});
    }
  }
  if (SerialOnly.empty())
    return;

  std::set<std::pair<size_t, size_t>> Visited;
  std::set<std::string> Reported; // "file:line:name" dedup
  std::deque<std::tuple<size_t, size_t, std::string>> Work; // file, fn, path

  auto processCall = [&](const FileData &FD, const CallRec &C,
                         const std::string &Path) {
    auto SI = SerialOnly.find(C.Name);
    if (SI != SerialOnly.end()) {
      std::string Key =
          FD.Path + ":" + std::to_string(C.Line) + ":" + C.Name;
      if (Reported.insert(Key).second)
        emitFinding("D5", FD.Path, C.Line, C.Col,
                    "call to serial-only '" + C.Name + "' (marked at " +
                        SI->second.File + ":" +
                        std::to_string(SI->second.Line) +
                        ") is reachable from lane phase via " + Path);
      return;
    }
    auto DI = Defs.find(C.Name);
    if (DI == Defs.end())
      return;
    for (const auto &[DF, DIdx] : DI->second) {
      const FnRec &Target = Files[DF].Fns[DIdx];
      if (Target.SerialCtx || Target.SerialOnly)
        continue;
      if (Visited.insert({DF, DIdx}).second)
        Work.push_back({DF, DIdx, Path + " -> " + C.Name});
    }
  };

  // Roots: lane-phase-marked definitions...
  for (size_t FI = 0; FI < Files.size(); ++FI) {
    if (Files[FI].T != Tree::Src)
      continue;
    for (size_t I = 0; I < Files[FI].Fns.size(); ++I) {
      const FnRec &F = Files[FI].Fns[I];
      if (F.LanePhase && F.IsDef && Visited.insert({FI, I}).second)
        Work.push_back({FI, I, F.Name});
    }
    // ...and calls inside DYNDIST_LANE_REGION brackets.
    for (const RegionRec &R : Files[FI].Regions)
      for (const FnRec &F : Files[FI].Fns)
        for (const CallRec &C : F.Calls)
          if (C.Line > R.BeginLine && C.Line < R.EndLine)
            processCall(Files[FI], C,
                        "lane region at " + Files[FI].Path + ":" +
                            std::to_string(R.BeginLine));
  }

  while (!Work.empty()) {
    auto [FI, I, Path] = Work.front();
    Work.pop_front();
    const FnRec &F = Files[FI].Fns[I];
    for (const CallRec &C : F.Calls)
      processCall(Files[FI], C, Path);
  }
}

//===----------------------------------------------------------------------===//
// Pass 7: suppressions, filtering, ordering
//===----------------------------------------------------------------------===//

void Linter::Impl::applySuppressions(std::vector<FileData> &Files) {
  // file -> line -> suppression
  std::map<std::string, std::map<uint32_t, const SuppressionRec *>> Index;
  for (const FileData &FD : Files)
    for (const SuppressionRec &S : FD.Sups)
      Index[FD.Path][S.TargetLine] = &S;
  for (Finding &F : Findings) {
    auto FIt = Index.find(F.File);
    if (FIt == Index.end())
      continue;
    auto LIt = FIt->second.find(F.Line);
    if (LIt == FIt->second.end())
      continue;
    if (LIt->second->Rules.count(F.Rule)) {
      F.Suppressed = true;
      F.SuppressReason = LIt->second->Reason;
    }
  }
}

LintResult Linter::Impl::run() {
  Findings.clear();
  std::vector<FileData> Files;
  Files.reserve(Sources.size());
  for (const auto &[Path, Contents] : Sources) {
    FileData FD;
    FD.Path = Path;
    FD.T = treeOf(Path);
    FD.Lx = lex(Contents);
    Files.push_back(std::move(FD));
  }
  for (FileData &FD : Files) {
    commentPass(FD);
    containerPass(FD);
    rulePass(FD);
    structuralPass(FD);
    attachMarkers(FD);
  }
  phasePass(Files);
  applySuppressions(Files);

  if (!EnabledRules.empty()) {
    std::set<std::string> Keep(EnabledRules.begin(), EnabledRules.end());
    Keep.insert("S1"); // grammar checks are never off
    Keep.insert("M1");
    Findings.erase(std::remove_if(Findings.begin(), Findings.end(),
                                  [&Keep](const Finding &F) {
                                    return !Keep.count(F.Rule);
                                  }),
                   Findings.end());
  }

  std::sort(Findings.begin(), Findings.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule) <
                     std::tie(B.File, B.Line, B.Col, B.Rule);
            });

  LintResult R;
  R.Findings = std::move(Findings);
  R.FilesScanned = static_cast<uint32_t>(Files.size());
  return R;
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Linter::Linter() : P(new Impl) {}
Linter::~Linter() { delete P; }

void Linter::setEnabledRules(std::vector<std::string> Rules) {
  P->EnabledRules = std::move(Rules);
}

void Linter::addSource(std::string Path, std::string_view Contents) {
  P->Sources.emplace_back(std::move(Path), std::string(Contents));
}

LintResult Linter::run() { return P->run(); }

const std::vector<RuleInfo> &ruleCatalog() { return Catalog; }

namespace {
void jsonEscape(std::ostream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        OS << ' ';
      else
        OS << C;
    }
  }
}
} // namespace

std::string toJson(const LintResult &R, std::string_view Root) {
  std::ostringstream OS;
  std::map<std::string, uint32_t> ByRule;
  uint32_t Suppressed = 0;
  for (const Finding &F : R.Findings) {
    ++ByRule[F.Rule];
    Suppressed += F.Suppressed ? 1u : 0u;
  }
  OS << "{\n  \"tool\": \"dyndist-lint\",\n  \"schema_version\": 1,\n";
  OS << "  \"root\": \"";
  jsonEscape(OS, Root);
  OS << "\",\n  \"files_scanned\": " << R.FilesScanned << ",\n";
  OS << "  \"counts\": {\"total\": " << R.Findings.size()
     << ", \"unsuppressed\": " << R.unsuppressedCount()
     << ", \"suppressed\": " << Suppressed << ", \"by_rule\": {";
  bool FirstRule = true;
  for (const auto &[Rule, Count] : ByRule) {
    if (!FirstRule)
      OS << ", ";
    FirstRule = false;
    OS << '"' << Rule << "\": " << Count;
  }
  OS << "}},\n  \"findings\": [";
  bool FirstFinding = true;
  for (const Finding &F : R.Findings) {
    if (!FirstFinding)
      OS << ',';
    FirstFinding = false;
    OS << "\n    {\"rule\": \"" << F.Rule << "\", \"severity\": \""
       << (F.Sev == Severity::Error ? "error" : "warning")
       << "\", \"file\": \"";
    jsonEscape(OS, F.File);
    OS << "\", \"line\": " << F.Line << ", \"col\": " << F.Col
       << ", \"message\": \"";
    jsonEscape(OS, F.Message);
    OS << "\", \"fix_hint\": \"";
    jsonEscape(OS, F.FixHint);
    OS << "\", \"suppressed\": " << (F.Suppressed ? "true" : "false");
    if (F.Suppressed) {
      OS << ", \"suppress_reason\": \"";
      jsonEscape(OS, F.SuppressReason);
      OS << '"';
    }
    OS << '}';
  }
  OS << (R.Findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return OS.str();
}

std::string formatDiagnostic(const Finding &F) {
  std::ostringstream OS;
  OS << F.File << ':' << F.Line << ':' << F.Col << ": "
     << (F.Sev == Severity::Error ? "error" : "warning") << ": [" << F.Rule
     << "] " << F.Message;
  if (F.Suppressed)
    OS << " [suppressed: " << F.SuppressReason << ']';
  if (!F.FixHint.empty())
    OS << "\n    hint: " << F.FixHint;
  return OS.str();
}

} // namespace analysis
} // namespace dyndist
