//===- Graph.cpp - Undirected dynamic graph ---------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Graph.h"

#include <cassert>

using namespace dyndist;

bool Graph::addNode(ProcessId P) {
  return Adjacency.try_emplace(P).second;
}

bool Graph::removeNode(ProcessId P) {
  auto It = Adjacency.find(P);
  if (It == Adjacency.end())
    return false;
  for (ProcessId N : It->second) {
    Adjacency[N].erase(P);
    --Edges;
  }
  Adjacency.erase(It);
  return true;
}

bool Graph::addEdge(ProcessId A, ProcessId B) {
  assert(A != B && "self-loops are not allowed");
  auto ItA = Adjacency.find(A);
  auto ItB = Adjacency.find(B);
  assert(ItA != Adjacency.end() && ItB != Adjacency.end() &&
         "addEdge() endpoints must exist");
  if (!ItA->second.insert(B).second)
    return false;
  ItB->second.insert(A);
  ++Edges;
  return true;
}

bool Graph::removeEdge(ProcessId A, ProcessId B) {
  auto ItA = Adjacency.find(A);
  if (ItA == Adjacency.end() || !ItA->second.erase(B))
    return false;
  Adjacency[B].erase(A);
  --Edges;
  return true;
}

bool Graph::hasNode(ProcessId P) const { return Adjacency.count(P) != 0; }

bool Graph::hasEdge(ProcessId A, ProcessId B) const {
  auto It = Adjacency.find(A);
  return It != Adjacency.end() && It->second.count(B) != 0;
}

std::vector<ProcessId> Graph::neighbors(ProcessId P) const {
  auto It = Adjacency.find(P);
  if (It == Adjacency.end())
    return {};
  return std::vector<ProcessId>(It->second.begin(), It->second.end());
}

size_t Graph::degree(ProcessId P) const {
  auto It = Adjacency.find(P);
  return It == Adjacency.end() ? 0 : It->second.size();
}

std::vector<ProcessId> Graph::nodes() const {
  std::vector<ProcessId> Out;
  Out.reserve(Adjacency.size());
  for (const auto &[P, Nbrs] : Adjacency) {
    (void)Nbrs;
    Out.push_back(P);
  }
  return Out;
}

void Graph::clear() {
  Adjacency.clear();
  Edges = 0;
}

bool Graph::checkConsistency() const {
  size_t HalfEdges = 0;
  for (const auto &[P, Nbrs] : Adjacency) {
    if (Nbrs.count(P))
      return false; // Self-loop.
    for (ProcessId N : Nbrs) {
      auto It = Adjacency.find(N);
      if (It == Adjacency.end() || !It->second.count(P))
        return false; // Dangling or asymmetric edge.
    }
    HalfEdges += Nbrs.size();
  }
  return HalfEdges == 2 * Edges;
}
