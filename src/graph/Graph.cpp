//===- Graph.cpp - Undirected dynamic graph ---------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Graph.h"

#include <algorithm>
#include <cassert>

using namespace dyndist;

namespace {

/// Sorted-insert of \p V into \p Vec; returns false when already present.
bool sortedInsert(std::vector<ProcessId> &Vec, ProcessId V) {
  auto It = std::lower_bound(Vec.begin(), Vec.end(), V);
  if (It != Vec.end() && *It == V)
    return false;
  Vec.insert(It, V);
  return true;
}

/// Sorted-erase of \p V from \p Vec; returns false when absent.
bool sortedErase(std::vector<ProcessId> &Vec, ProcessId V) {
  auto It = std::lower_bound(Vec.begin(), Vec.end(), V);
  if (It == Vec.end() || *It != V)
    return false;
  Vec.erase(It);
  return true;
}

} // namespace

bool Graph::addNode(ProcessId P) {
  assert(P != InvalidProcess && "InvalidProcess cannot be a node");
  if (P >= SlotOfId.size())
    SlotOfId.resize(P + 1, NoSlot);
  else if (SlotOfId[P] != NoSlot)
    return false;

  uint32_t S;
  if (!FreeSlots.empty()) {
    S = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    S = static_cast<uint32_t>(Slots.size());
    Slots.emplace_back();
  }
  Slots[S].Id = P;
  assert(Slots[S].Nbrs.empty() && "recycled slot carries stale neighbors");
  SlotOfId[P] = S;
  sortedInsert(NodeIds, P);
  return true;
}

bool Graph::removeNode(ProcessId P) {
  uint32_t S = slotOf(P);
  if (S == NoSlot)
    return false;
  std::vector<ProcessId> &Nbrs = Slots[S].Nbrs;
  for (ProcessId N : Nbrs) {
    sortedErase(Slots[SlotOfId[N]].Nbrs, P);
    --Edges;
  }
  Nbrs.clear(); // Capacity is retained for the slot's next occupant.
  Slots[S].Id = InvalidProcess;
  FreeSlots.push_back(S);
  SlotOfId[P] = NoSlot;
  sortedErase(NodeIds, P);
  return true;
}

bool Graph::addEdge(ProcessId A, ProcessId B) {
  assert(A != B && "self-loops are not allowed");
  uint32_t SA = slotOf(A);
  uint32_t SB = slotOf(B);
  assert(SA != NoSlot && SB != NoSlot && "addEdge() endpoints must exist");
  if (!sortedInsert(Slots[SA].Nbrs, B))
    return false;
  sortedInsert(Slots[SB].Nbrs, A);
  ++Edges;
  return true;
}

bool Graph::removeEdge(ProcessId A, ProcessId B) {
  uint32_t SA = slotOf(A);
  uint32_t SB = slotOf(B);
  if (SA == NoSlot || SB == NoSlot || !sortedErase(Slots[SA].Nbrs, B))
    return false;
  sortedErase(Slots[SB].Nbrs, A);
  --Edges;
  return true;
}

bool Graph::hasEdge(ProcessId A, ProcessId B) const {
  uint32_t SA = slotOf(A);
  if (SA == NoSlot)
    return false;
  const std::vector<ProcessId> &Nbrs = Slots[SA].Nbrs;
  return std::binary_search(Nbrs.begin(), Nbrs.end(), B);
}

std::vector<ProcessId> Graph::neighbors(ProcessId P) const {
  uint32_t S = slotOf(P);
  if (S == NoSlot)
    return {};
  return Slots[S].Nbrs;
}

void Graph::clear() {
  // Capacity-retaining: slots are vacated (keeping their neighbor vectors'
  // storage, as removeNode does) and pushed onto the free list in
  // descending order, so slot 0 is handed out first — a cleared graph
  // assigns exactly the slots a fresh graph would.
  FreeSlots.clear();
  for (uint32_t S = static_cast<uint32_t>(Slots.size()); S--;) {
    Slots[S].Id = InvalidProcess;
    Slots[S].Nbrs.clear();
    FreeSlots.push_back(S);
  }
  std::fill(SlotOfId.begin(), SlotOfId.end(), NoSlot);
  NodeIds.clear();
  Edges = 0;
}

bool Graph::checkConsistency() const {
  // Node index: ascending, unique, cross-consistent with the slot table.
  if (!std::is_sorted(NodeIds.begin(), NodeIds.end()))
    return false;
  if (std::adjacent_find(NodeIds.begin(), NodeIds.end()) != NodeIds.end())
    return false;
  for (ProcessId P : NodeIds) {
    uint32_t S = slotOf(P);
    if (S == NoSlot || S >= Slots.size() || Slots[S].Id != P)
      return false;
  }
  // Every id-table entry that claims a slot must be a present node.
  size_t Mapped = 0;
  for (ProcessId P = 0; P != SlotOfId.size(); ++P)
    if (SlotOfId[P] != NoSlot) {
      ++Mapped;
      if (Slots[SlotOfId[P]].Id != P)
        return false;
    }
  if (Mapped != NodeIds.size())
    return false;
  // Free list covers exactly the vacant slots, each cleanly vacated.
  if (FreeSlots.size() + NodeIds.size() != Slots.size())
    return false;
  for (uint32_t S : FreeSlots)
    if (S >= Slots.size() || Slots[S].Id != InvalidProcess ||
        !Slots[S].Nbrs.empty())
      return false;
  // Adjacency: sorted, unique, no self-loops, symmetric, edge count.
  size_t HalfEdges = 0;
  for (ProcessId P : NodeIds) {
    const std::vector<ProcessId> &Nbrs = Slots[SlotOfId[P]].Nbrs;
    if (!std::is_sorted(Nbrs.begin(), Nbrs.end()))
      return false;
    if (std::adjacent_find(Nbrs.begin(), Nbrs.end()) != Nbrs.end())
      return false;
    for (ProcessId N : Nbrs) {
      if (N == P)
        return false; // Self-loop.
      uint32_t NS = slotOf(N);
      if (NS == NoSlot)
        return false; // Dangling edge.
      const std::vector<ProcessId> &Back = Slots[NS].Nbrs;
      if (!std::binary_search(Back.begin(), Back.end(), P))
        return false; // Asymmetric edge.
    }
    HalfEdges += Nbrs.size();
  }
  return HalfEdges == 2 * Edges;
}
