//===- Dot.cpp - Graphviz export ------------------------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Dot.h"

#include "dyndist/support/StringUtils.h"

#include <cstdio>

using namespace dyndist;

std::string dyndist::toDot(const Graph &G,
                           const std::set<ProcessId> &Highlight,
                           const std::string &Name) {
  std::string Out = "graph " + Name + " {\n  node [shape=circle];\n";
  for (ProcessId P : G.nodesView()) {
    Out += format("  n%llu", (unsigned long long)P);
    if (Highlight.count(P))
      Out += " [style=filled, fillcolor=salmon]";
    Out += ";\n";
  }
  // Each undirected edge once (smaller endpoint first; neighbors ascend).
  for (ProcessId P : G.nodesView())
    for (ProcessId N : G.neighborView(P))
      if (P < N)
        Out += format("  n%llu -- n%llu;\n", (unsigned long long)P,
                      (unsigned long long)N);
  Out += "}\n";
  return Out;
}

Status dyndist::writeDotFile(const Graph &G, const std::string &Path,
                             const std::set<ProcessId> &Highlight,
                             const std::string &Name) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Error(Error::Code::InvalidArgument,
                 "cannot open for writing: " + Path);
  std::string Data = toDot(G, Highlight, Name);
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  if (Written != Data.size())
    return Error(Error::Code::InvalidArgument, "short write to " + Path);
  return Status::success();
}
