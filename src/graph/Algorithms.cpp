//===- Algorithms.cpp - Graph algorithms ------------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// All traversals run over the graph's dense slot indices with epoch-stamped
// thread-local scratch buffers: a BFS allocates nothing once the scratch has
// grown to the graph's slot-table size, and "visited" is one stamp compare
// instead of a map lookup. The public map-returning wrappers materialize
// their results from the scratch, preserving the original (ascending,
// deterministic) output contracts byte for byte.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Algorithms.h"

#include <algorithm>

using namespace dyndist;

namespace {

/// Reusable per-thread traversal state, indexed by graph slot. Epoch
/// stamping makes "clear" an increment; the arrays are only ever resized
/// upward (thread-local, so sweeps sharded by SweepRunner do not share it).
struct BfsScratch {
  std::vector<uint32_t> Stamp;  ///< Slot visited iff Stamp[S] == Epoch.
  std::vector<uint64_t> Dist;   ///< Hop distance, valid when stamped.
  std::vector<uint32_t> Parent; ///< Parent slot, valid when stamped.
  std::vector<uint32_t> Order;  ///< Stamped slots in discovery order.
  uint32_t Epoch = 0;

  /// Starts a fresh traversal over \p G; invalidates previous results.
  void begin(const Graph &G) {
    size_t N = G.slotTableSize();
    if (Stamp.size() < N) {
      Stamp.resize(N, 0);
      Dist.resize(N);
      Parent.resize(N);
    }
    if (++Epoch == 0) { // Stamp wrap-around: reset the array once.
      std::fill(Stamp.begin(), Stamp.end(), 0u);
      Epoch = 1;
    }
    Order.clear();
  }

  bool visited(uint32_t S) const { return Stamp[S] == Epoch; }

  void visit(uint32_t S, uint64_t D, uint32_t P) {
    Stamp[S] = Epoch;
    Dist[S] = D;
    Parent[S] = P;
    Order.push_back(S);
  }
};

thread_local BfsScratch TLScratch;

/// Dense BFS from \p Source. Fills \p S (distances, parents, discovery
/// order) and returns the number of reachable nodes, 0 when Source is
/// unknown. Neighbor expansion ascends by id, so discovery order — and
/// therefore every derived output — is deterministic.
size_t bfsDense(const Graph &G, ProcessId Source, BfsScratch &S) {
  S.begin(G);
  uint32_t Src = G.slotOf(Source);
  if (Src == Graph::NoSlot)
    return 0;
  S.visit(Src, 0, Src);
  for (size_t Head = 0; Head != S.Order.size(); ++Head) {
    uint32_t Cur = S.Order[Head];
    uint64_t D = S.Dist[Cur];
    for (ProcessId N : G.slotNeighbors(Cur)) {
      uint32_t NS = G.slotOf(N);
      if (!S.visited(NS))
        S.visit(NS, D + 1, Cur);
    }
  }
  return S.Order.size();
}

} // namespace

std::map<ProcessId, uint64_t> dyndist::bfsDistances(const Graph &G,
                                                    ProcessId Source) {
  BfsScratch &S = TLScratch;
  bfsDense(G, Source, S);
  std::map<ProcessId, uint64_t> Dist;
  for (uint32_t Slot : S.Order)
    Dist.emplace(G.slotId(Slot), S.Dist[Slot]);
  return Dist;
}

bool dyndist::isConnected(const Graph &G) {
  if (G.nodeCount() == 0)
    return true;
  // Early-exit by count: no distance map is materialized; the BFS itself
  // is the visited counter.
  return bfsDense(G, G.nodesView().front(), TLScratch) == G.nodeCount();
}

std::vector<std::vector<ProcessId>>
dyndist::connectedComponents(const Graph &G) {
  std::vector<std::vector<ProcessId>> Components;
  BfsScratch &S = TLScratch;
  S.begin(G); // One epoch spans the whole sweep.
  for (ProcessId Root : G.nodesView()) {
    uint32_t RS = G.slotOf(Root);
    if (S.visited(RS))
      continue;
    // BFS the component, appending to the shared discovery order.
    size_t First = S.Order.size();
    S.visit(RS, 0, RS);
    for (size_t Head = First; Head != S.Order.size(); ++Head) {
      uint32_t Cur = S.Order[Head];
      for (ProcessId N : G.slotNeighbors(Cur)) {
        uint32_t NS = G.slotOf(N);
        if (!S.visited(NS))
          S.visit(NS, S.Dist[Cur] + 1, Cur);
      }
    }
    std::vector<ProcessId> Component;
    Component.reserve(S.Order.size() - First);
    for (size_t I = First; I != S.Order.size(); ++I)
      Component.push_back(G.slotId(S.Order[I]));
    std::sort(Component.begin(), Component.end());
    Components.push_back(std::move(Component));
  }
  // Roots ascend over NodeIds, so components are already ordered by their
  // smallest node (the root is its component's minimum-id entry point, and
  // every smaller id was visited by an earlier root's BFS).
  return Components;
}

std::optional<uint64_t> dyndist::eccentricity(const Graph &G,
                                              ProcessId Source) {
  if (!G.hasNode(Source))
    return std::nullopt;
  BfsScratch &S = TLScratch;
  if (bfsDense(G, Source, S) != G.nodeCount())
    return std::nullopt;
  uint64_t Ecc = 0;
  for (uint32_t Slot : S.Order)
    Ecc = std::max(Ecc, S.Dist[Slot]);
  return Ecc;
}

std::optional<uint64_t> dyndist::diameter(const Graph &G) {
  if (G.nodeCount() == 0)
    return std::nullopt;
  uint64_t Diam = 0;
  for (ProcessId P : G.nodesView()) {
    auto Ecc = eccentricity(G, P);
    if (!Ecc)
      return std::nullopt;
    Diam = std::max(Diam, *Ecc);
  }
  return Diam;
}

std::vector<ProcessId> dyndist::ballAround(const Graph &G, ProcessId Source,
                                           uint64_t MaxHops) {
  BfsScratch &S = TLScratch;
  bfsDense(G, Source, S);
  std::vector<ProcessId> Out;
  for (uint32_t Slot : S.Order)
    if (S.Dist[Slot] <= MaxHops)
      Out.push_back(G.slotId(Slot));
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::map<ProcessId, ProcessId> dyndist::bfsTree(const Graph &G,
                                                ProcessId Source) {
  BfsScratch &S = TLScratch;
  bfsDense(G, Source, S);
  std::map<ProcessId, ProcessId> Parent;
  for (uint32_t Slot : S.Order)
    Parent.emplace(G.slotId(Slot), G.slotId(S.Parent[Slot]));
  return Parent;
}

std::vector<ProcessId> dyndist::articulationPoints(const Graph &G) {
  // Iterative Tarjan low-link DFS (the recursion could be deep on chain
  // overlays, which are exactly a case we analyze), over dense slot
  // indices: discovery/low-link/parent live in flat arrays.
  size_t Table = G.slotTableSize();
  std::vector<uint64_t> Disc(Table, 0), Low(Table, 0);
  std::vector<uint32_t> Parent(Table, Graph::NoSlot);
  std::vector<bool> Cut(Table, false);
  uint64_t Clock = 0;

  struct Frame {
    uint32_t Slot;
    NeighborView Nbrs; // Valid: the graph is not mutated while we walk.
    size_t NextNbr = 0;
  };

  std::vector<Frame> Stack;
  for (ProcessId RootId : G.nodesView()) {
    uint32_t Root = G.slotOf(RootId);
    if (Disc[Root] != 0)
      continue;
    size_t RootChildren = 0;
    Parent[Root] = Root;
    Stack.push_back({Root, G.slotNeighbors(Root), 0});
    Disc[Root] = Low[Root] = ++Clock;

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.NextNbr < Top.Nbrs.size()) {
        uint32_t Next = G.slotOf(Top.Nbrs[Top.NextNbr++]);
        if (Disc[Next] == 0) {
          Parent[Next] = Top.Slot;
          if (Top.Slot == Root)
            ++RootChildren;
          Disc[Next] = Low[Next] = ++Clock;
          Stack.push_back({Next, G.slotNeighbors(Next), 0});
        } else if (Next != Parent[Top.Slot]) {
          Low[Top.Slot] = std::min(Low[Top.Slot], Disc[Next]);
        }
        continue;
      }
      // Done with Top: fold its low-link into the parent.
      uint32_t Done = Top.Slot;
      Stack.pop_back();
      if (Stack.empty())
        continue;
      uint32_t Up = Stack.back().Slot;
      Low[Up] = std::min(Low[Up], Low[Done]);
      if (Up != Root && Low[Done] >= Disc[Up])
        Cut[Up] = true;
    }
    if (RootChildren >= 2)
      Cut[Root] = true;
  }

  std::vector<ProcessId> Out;
  for (ProcessId P : G.nodesView())
    if (Cut[G.slotOf(P)])
      Out.push_back(P);
  return Out; // NodeIds ascend, so the cut set ascends.
}
