//===- Algorithms.cpp - Graph algorithms ------------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Algorithms.h"

#include <algorithm>
#include <deque>

using namespace dyndist;

std::map<ProcessId, uint64_t> dyndist::bfsDistances(const Graph &G,
                                                    ProcessId Source) {
  std::map<ProcessId, uint64_t> Dist;
  if (!G.hasNode(Source))
    return Dist;
  std::deque<ProcessId> Work;
  Dist[Source] = 0;
  Work.push_back(Source);
  while (!Work.empty()) {
    ProcessId P = Work.front();
    Work.pop_front();
    uint64_t D = Dist[P];
    for (ProcessId N : G.adjacency().at(P)) {
      if (Dist.count(N))
        continue;
      Dist[N] = D + 1;
      Work.push_back(N);
    }
  }
  return Dist;
}

bool dyndist::isConnected(const Graph &G) {
  if (G.nodeCount() == 0)
    return true;
  ProcessId First = G.adjacency().begin()->first;
  return bfsDistances(G, First).size() == G.nodeCount();
}

std::vector<std::vector<ProcessId>>
dyndist::connectedComponents(const Graph &G) {
  std::vector<std::vector<ProcessId>> Components;
  std::set<ProcessId> Seen;
  for (const auto &[P, Nbrs] : G.adjacency()) {
    (void)Nbrs;
    if (Seen.count(P))
      continue;
    auto Dist = bfsDistances(G, P);
    std::vector<ProcessId> Component;
    Component.reserve(Dist.size());
    for (const auto &[Q, D] : Dist) {
      (void)D;
      Component.push_back(Q);
      Seen.insert(Q);
    }
    Components.push_back(std::move(Component));
  }
  return Components;
}

std::optional<uint64_t> dyndist::eccentricity(const Graph &G,
                                              ProcessId Source) {
  if (!G.hasNode(Source))
    return std::nullopt;
  auto Dist = bfsDistances(G, Source);
  if (Dist.size() != G.nodeCount())
    return std::nullopt;
  uint64_t Ecc = 0;
  for (const auto &[P, D] : Dist) {
    (void)P;
    Ecc = std::max(Ecc, D);
  }
  return Ecc;
}

std::optional<uint64_t> dyndist::diameter(const Graph &G) {
  if (G.nodeCount() == 0)
    return std::nullopt;
  uint64_t Diam = 0;
  for (const auto &[P, Nbrs] : G.adjacency()) {
    (void)Nbrs;
    auto Ecc = eccentricity(G, P);
    if (!Ecc)
      return std::nullopt;
    Diam = std::max(Diam, *Ecc);
  }
  return Diam;
}

std::vector<ProcessId> dyndist::ballAround(const Graph &G, ProcessId Source,
                                           uint64_t MaxHops) {
  std::vector<ProcessId> Out;
  for (const auto &[P, D] : bfsDistances(G, Source))
    if (D <= MaxHops)
      Out.push_back(P);
  return Out; // Map iteration already ascends.
}

std::map<ProcessId, ProcessId> dyndist::bfsTree(const Graph &G,
                                                ProcessId Source) {
  std::map<ProcessId, ProcessId> Parent;
  if (!G.hasNode(Source))
    return Parent;
  std::deque<ProcessId> Work;
  Parent[Source] = Source;
  Work.push_back(Source);
  while (!Work.empty()) {
    ProcessId P = Work.front();
    Work.pop_front();
    for (ProcessId N : G.adjacency().at(P)) {
      if (Parent.count(N))
        continue;
      Parent[N] = P;
      Work.push_back(N);
    }
  }
  return Parent;
}

std::vector<ProcessId> dyndist::articulationPoints(const Graph &G) {
  // Iterative Tarjan low-link DFS (the recursion could be deep on chain
  // overlays, which are exactly a case we analyze).
  std::map<ProcessId, uint64_t> Disc, Low;
  std::map<ProcessId, ProcessId> Parent;
  std::map<ProcessId, size_t> RootChildren;
  std::set<ProcessId> Cuts;
  uint64_t Clock = 0;

  struct Frame {
    ProcessId Node;
    std::vector<ProcessId> Nbrs;
    size_t NextNbr = 0;
  };

  for (const auto &[Root, RootNbrs] : G.adjacency()) {
    (void)RootNbrs;
    if (Disc.count(Root))
      continue;
    Parent[Root] = Root;
    std::vector<Frame> Stack;
    Stack.push_back({Root, G.neighbors(Root)});
    Disc[Root] = Low[Root] = ++Clock;

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.NextNbr < Top.Nbrs.size()) {
        ProcessId Next = Top.Nbrs[Top.NextNbr++];
        if (!Disc.count(Next)) {
          Parent[Next] = Top.Node;
          if (Top.Node == Root)
            ++RootChildren[Root];
          Disc[Next] = Low[Next] = ++Clock;
          Stack.push_back({Next, G.neighbors(Next)});
        } else if (Next != Parent[Top.Node]) {
          Low[Top.Node] = std::min(Low[Top.Node], Disc[Next]);
        }
        continue;
      }
      // Done with Top: fold its low-link into the parent.
      ProcessId Done = Top.Node;
      Stack.pop_back();
      if (Stack.empty())
        continue;
      ProcessId Up = Stack.back().Node;
      Low[Up] = std::min(Low[Up], Low[Done]);
      if (Up != Root && Low[Done] >= Disc[Up])
        Cuts.insert(Up);
    }
    if (RootChildren[Root] >= 2)
      Cuts.insert(Root);
  }
  return std::vector<ProcessId>(Cuts.begin(), Cuts.end());
}
