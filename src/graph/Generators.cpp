//===- Generators.cpp - Overlay generators -----------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Generators.h"

#include "dyndist/graph/Algorithms.h"

#include <cassert>
#include <cmath>
#include <set>

using namespace dyndist;

Graph dyndist::makeRing(size_t N) {
  assert(N >= 3 && "a ring needs at least 3 nodes");
  Graph G;
  for (size_t I = 0; I != N; ++I)
    G.addNode(I);
  for (size_t I = 0; I != N; ++I)
    G.addEdge(I, (I + 1) % N);
  return G;
}

Graph dyndist::makeLine(size_t N) {
  assert(N >= 1 && "a line needs at least 1 node");
  Graph G;
  for (size_t I = 0; I != N; ++I)
    G.addNode(I);
  for (size_t I = 0; I + 1 < N; ++I)
    G.addEdge(I, I + 1);
  return G;
}

Graph dyndist::makeTorus(size_t Width, size_t Height) {
  assert(Width >= 2 && Height >= 2 && "torus needs both dimensions >= 2");
  Graph G;
  auto Id = [Width](size_t X, size_t Y) { return Y * Width + X; };
  for (size_t Y = 0; Y != Height; ++Y)
    for (size_t X = 0; X != Width; ++X)
      G.addNode(Id(X, Y));
  for (size_t Y = 0; Y != Height; ++Y) {
    for (size_t X = 0; X != Width; ++X) {
      // Width/Height == 2 would duplicate wrap edges; addEdge dedups them.
      G.addEdge(Id(X, Y), Id((X + 1) % Width, Y));
      G.addEdge(Id(X, Y), Id(X, (Y + 1) % Height));
    }
  }
  return G;
}

Graph dyndist::makeComplete(size_t N) {
  Graph G;
  for (size_t I = 0; I != N; ++I)
    G.addNode(I);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J)
      G.addEdge(I, J);
  return G;
}

Graph dyndist::makeErdosRenyi(size_t N, double P, Rng &R,
                              bool ForceConnected) {
  assert(N >= 1 && P >= 0.0 && P <= 1.0 && "bad G(n,p) parameters");
  for (int Attempt = 0; Attempt != 1000; ++Attempt) {
    Graph G;
    for (size_t I = 0; I != N; ++I)
      G.addNode(I);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J)
        if (R.nextBernoulli(P))
          G.addEdge(I, J);
    if (!ForceConnected || isConnected(G))
      return G;
  }
  assert(false && "G(n,p) never came out connected; raise P");
  return Graph();
}

Graph dyndist::makeRandomRegular(size_t N, size_t K, Rng &R,
                                 bool ForceConnected) {
  assert(K < N && (N * K) % 2 == 0 && "K-regular needs K < N and N*K even");
  for (int Attempt = 0; Attempt != 1000; ++Attempt) {
    // Pairing model: K stubs per node, match uniformly, reject multi-edges
    // and loops.
    std::vector<ProcessId> Stubs;
    Stubs.reserve(N * K);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != K; ++J)
        Stubs.push_back(I);
    R.shuffle(Stubs);

    Graph G;
    for (size_t I = 0; I != N; ++I)
      G.addNode(I);
    bool Simple = true;
    for (size_t I = 0; I + 1 < Stubs.size(); I += 2) {
      ProcessId A = Stubs[I], B = Stubs[I + 1];
      if (A == B || G.hasEdge(A, B)) {
        Simple = false;
        break;
      }
      G.addEdge(A, B);
    }
    if (!Simple)
      continue;
    if (!ForceConnected || isConnected(G))
      return G;
  }
  assert(false && "pairing model never produced a usable K-regular graph");
  return Graph();
}

Graph dyndist::makeBarabasiAlbert(size_t N, size_t LinksPerNode, Rng &R) {
  assert(LinksPerNode >= 1 && N > LinksPerNode &&
         "Barabasi-Albert needs N > LinksPerNode >= 1");
  Graph G;
  // Seed clique of LinksPerNode + 1 nodes.
  size_t SeedSize = LinksPerNode + 1;
  for (size_t I = 0; I != SeedSize; ++I)
    G.addNode(I);
  for (size_t I = 0; I != SeedSize; ++I)
    for (size_t J = I + 1; J != SeedSize; ++J)
      G.addEdge(I, J);

  // Degree-proportional sampling via a repeated-endpoint list.
  std::vector<ProcessId> Endpoints;
  for (size_t I = 0; I != SeedSize; ++I)
    for (size_t J = 0; J != SeedSize - 1; ++J)
      Endpoints.push_back(I);

  for (size_t NewNode = SeedSize; NewNode != N; ++NewNode) {
    G.addNode(NewNode);
    std::set<ProcessId> Targets;
    while (Targets.size() < LinksPerNode)
      Targets.insert(R.pick(Endpoints));
    for (ProcessId T : Targets) {
      G.addEdge(NewNode, T);
      Endpoints.push_back(NewNode);
      Endpoints.push_back(T);
    }
  }
  return G;
}

Graph dyndist::makeGeometric(size_t N, double Radius, Rng &R,
                             bool ForceConnected) {
  assert(N >= 1 && Radius > 0.0 && "bad geometric graph parameters");
  for (int Attempt = 0; Attempt != 1000; ++Attempt) {
    std::vector<std::pair<double, double>> Pos(N);
    for (auto &[X, Y] : Pos) {
      X = R.nextDouble();
      Y = R.nextDouble();
    }
    Graph G;
    for (size_t I = 0; I != N; ++I)
      G.addNode(I);
    double R2 = Radius * Radius;
    for (size_t I = 0; I != N; ++I) {
      for (size_t J = I + 1; J != N; ++J) {
        double DX = Pos[I].first - Pos[J].first;
        double DY = Pos[I].second - Pos[J].second;
        if (DX * DX + DY * DY <= R2)
          G.addEdge(I, J);
      }
    }
    if (!ForceConnected || isConnected(G))
      return G;
  }
  assert(false && "geometric graph never came out connected; raise Radius");
  return Graph();
}
