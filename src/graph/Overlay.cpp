//===- Overlay.cpp - Churn-maintained overlay --------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Overlay.h"

#include <cassert>

using namespace dyndist;

DynamicOverlay::DynamicOverlay(size_t TargetDegree, Rng R, AttachMode Mode,
                               RepairMode Repair)
    : TargetDegree(TargetDegree), R(R), Mode(Mode), Repair(Repair) {
  assert(TargetDegree >= 1 && "overlay target degree must be >= 1");
}

void DynamicOverlay::join(ProcessId P) {
  assert(!G.hasNode(P) && "node already in the overlay");
  if (G.nodeCount() == 0) {
    G.addNode(P);
    LastJoined = P;
    return;
  }
  if (Mode == AttachMode::Chain) {
    ProcessId Anchor = G.hasNode(LastJoined) && LastJoined != P
                           ? LastJoined
                           : G.nodesView().back();
    G.addNode(P);
    G.addEdge(P, Anchor);
    LastJoined = P;
    return;
  }
  // Uniform attach targets sampled without replacement by rejection against
  // the picks so far — O(TargetDegree^2) instead of the full membership
  // copy + Fisher-Yates shuffle this used to do (O(n) per join, and the
  // dominant cost of populating large systems). Targets are resolved
  // against the pre-join view, which addNode would invalidate.
  NeighborView Members = G.nodesView();
  size_t Links = std::min(TargetDegree, Members.size());
  Picks.clear();
  if (Links == Members.size()) {
    // Degenerate small system: every member is a target, no draws needed
    // (the shuffled prefix would have been the same set).
    Picks.assign(Members.begin(), Members.end());
  } else {
    while (Picks.size() != Links) {
      ProcessId T = Members[R.nextBelow(Members.size())];
      bool Dup = false;
      for (ProcessId Seen : Picks)
        Dup |= Seen == T;
      if (!Dup)
        Picks.push_back(T);
    }
  }
  G.addNode(P);
  for (ProcessId T : Picks)
    G.addEdge(P, T);
  LastJoined = P;
}

void DynamicOverlay::leave(ProcessId P) {
  if (!G.hasNode(P))
    return;
  std::vector<ProcessId> Nbrs = G.neighbors(P);
  switch (Repair) {
  case RepairMode::PatchPath:
    // Path through the (sorted) neighbor list: every route through P is
    // rerouted, so connectivity survives deterministically.
    for (size_t I = 0; I + 1 < Nbrs.size(); ++I)
      if (!G.hasEdge(Nbrs[I], Nbrs[I + 1]))
        G.addEdge(Nbrs[I], Nbrs[I + 1]);
    break;
  case RepairMode::RandomRewire: {
    G.removeNode(P);
    // Top orphans back up to the target degree with random links. Degrees
    // stay bounded, but nothing guarantees the replacement links restore
    // every severed route: connectivity becomes probabilistic. The view
    // stays valid through the loop — addEdge never touches the node set.
    NeighborView Members = G.nodesView();
    if (Members.size() < 2)
      return;
    for (ProcessId N : Nbrs) {
      if (!G.hasNode(N))
        continue;
      for (int Attempt = 0;
           Attempt != 8 && G.degree(N) < TargetDegree; ++Attempt) {
        ProcessId Target = Members[R.nextBelow(Members.size())];
        if (Target == N || G.hasEdge(N, Target))
          continue;
        G.addEdge(N, Target);
      }
    }
    return;
  }
  }
  G.removeNode(P);
}

void DynamicOverlay::seed(Graph Initial) { G = std::move(Initial); }

std::vector<ProcessId> DynamicOverlay::neighborsOf(ProcessId P) const {
  return G.neighbors(P);
}

void DynamicOverlay::reset(size_t NewTargetDegree, Rng NewR,
                           AttachMode NewMode, RepairMode NewRepair) {
  assert(NewTargetDegree >= 1 && "overlay target degree must be >= 1");
  TargetDegree = NewTargetDegree;
  R = NewR;
  Mode = NewMode;
  Repair = NewRepair;
  G.clear();
  LastJoined = InvalidProcess;
}

void DynamicOverlay::attachTo(Simulator &S) {
  S.setTopologyProvider(this);
  S.setMembershipHooks([this](ProcessId P) { join(P); },
                       [this](ProcessId P) { leave(P); });
}
