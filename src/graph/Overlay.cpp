//===- Overlay.cpp - Churn-maintained overlay --------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//

#include "dyndist/graph/Overlay.h"

#include <cassert>

using namespace dyndist;

DynamicOverlay::DynamicOverlay(size_t TargetDegree, Rng R, AttachMode Mode,
                               RepairMode Repair)
    : TargetDegree(TargetDegree), R(R), Mode(Mode), Repair(Repair) {
  assert(TargetDegree >= 1 && "overlay target degree must be >= 1");
}

void DynamicOverlay::join(ProcessId P) {
  assert(!G.hasNode(P) && "node already in the overlay");
  std::vector<ProcessId> Members = G.nodes();
  G.addNode(P);
  if (Members.empty()) {
    LastJoined = P;
    return;
  }
  if (Mode == AttachMode::Chain) {
    ProcessId Anchor =
        G.hasNode(LastJoined) && LastJoined != P ? LastJoined : Members.back();
    G.addEdge(P, Anchor);
    LastJoined = P;
    return;
  }
  size_t Links = std::min(TargetDegree, Members.size());
  R.shuffle(Members);
  for (size_t I = 0; I != Links; ++I)
    G.addEdge(P, Members[I]);
  LastJoined = P;
}

void DynamicOverlay::leave(ProcessId P) {
  if (!G.hasNode(P))
    return;
  std::vector<ProcessId> Nbrs = G.neighbors(P);
  switch (Repair) {
  case RepairMode::PatchPath:
    // Path through the (sorted) neighbor list: every route through P is
    // rerouted, so connectivity survives deterministically.
    for (size_t I = 0; I + 1 < Nbrs.size(); ++I)
      if (!G.hasEdge(Nbrs[I], Nbrs[I + 1]))
        G.addEdge(Nbrs[I], Nbrs[I + 1]);
    break;
  case RepairMode::RandomRewire: {
    G.removeNode(P);
    // Top orphans back up to the target degree with random links. Degrees
    // stay bounded, but nothing guarantees the replacement links restore
    // every severed route: connectivity becomes probabilistic.
    std::vector<ProcessId> Members = G.nodes();
    if (Members.size() < 2)
      return;
    for (ProcessId N : Nbrs) {
      if (!G.hasNode(N))
        continue;
      for (int Attempt = 0;
           Attempt != 8 && G.degree(N) < TargetDegree; ++Attempt) {
        ProcessId Target = R.pick(Members);
        if (Target == N || G.hasEdge(N, Target))
          continue;
        G.addEdge(N, Target);
      }
    }
    return;
  }
  }
  G.removeNode(P);
}

void DynamicOverlay::seed(Graph Initial) { G = std::move(Initial); }

std::vector<ProcessId> DynamicOverlay::neighborsOf(ProcessId P) const {
  return G.neighbors(P);
}

void DynamicOverlay::attachTo(Simulator &S) {
  S.setTopologyProvider(this);
  S.setMembershipHooks([this](ProcessId P) { join(P); },
                       [this](ProcessId P) { leave(P); });
}
