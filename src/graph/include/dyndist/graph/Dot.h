//===- dyndist/graph/Dot.h - Graphviz export --------------------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz DOT rendering of overlay graphs, for eyeballing the topologies
/// the experiments run on (`dot -Tsvg overlay.dot -o overlay.svg`).
/// Optional per-node highlighting marks sets of interest — the E8 analyses
/// use it for articulation points.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_DOT_H
#define DYNDIST_GRAPH_DOT_H

#include "dyndist/graph/Graph.h"
#include "dyndist/support/Result.h"

#include <set>
#include <string>

namespace dyndist {

/// Renders \p G as an undirected DOT graph. Nodes in \p Highlight are
/// drawn filled (e.g. cut vertices).
std::string toDot(const Graph &G, const std::set<ProcessId> &Highlight = {},
                  const std::string &Name = "overlay");

/// Writes toDot() output to \p Path.
Status writeDotFile(const Graph &G, const std::string &Path,
                    const std::set<ProcessId> &Highlight = {},
                    const std::string &Name = "overlay");

} // namespace dyndist

#endif // DYNDIST_GRAPH_DOT_H
