//===- dyndist/graph/Graph.h - Undirected dynamic graph ---------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overlay graph of a dynamic system: an undirected simple graph over
/// ProcessId vertices supporting incremental mutation (nodes and edges come
/// and go as entities join and leave).
///
/// Representation: a slot-indexed flat node table. Each present node owns a
/// dense slot holding its sorted neighbor vector; slots of departed nodes
/// are recycled through a free list (mirroring the simulator's indexed
/// process table), so steady-state churn reuses neighbor-vector capacity
/// instead of allocating. Identity-to-slot translation is a direct-indexed
/// vector — ProcessIds are assigned densely by the simulator (0, 1, 2, ...)
/// and the generators, so the table is O(max id) small integers. All
/// neighbor and node enumerations ascend by id, which keeps whole
/// experiments seed-reproducible (the determinism contract of
/// docs/BENCHMARKING.md).
///
/// NeighborView is a zero-copy span over a neighbor (or node) list. Views
/// are invalidated by ANY graph mutation — addNode/removeNode can grow or
/// reshuffle the tables, add/removeEdge moves neighbor-vector elements. Use
/// them for immediate iteration, never for storage across mutations.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_GRAPH_H
#define DYNDIST_GRAPH_GRAPH_H

#include "dyndist/sim/Types.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dyndist {

/// Zero-copy view over a contiguous, ascending run of ProcessIds (a node's
/// neighbor list, or the graph's node set). Invalidated by any mutation of
/// the graph it was obtained from.
class NeighborView {
public:
  using value_type = ProcessId;

  NeighborView() = default;
  NeighborView(const ProcessId *Data, size_t Count)
      : Data(Data), Count(Count) {}

  const ProcessId *begin() const { return Data; }
  const ProcessId *end() const { return Data + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  ProcessId operator[](size_t I) const { return Data[I]; }
  ProcessId front() const { return Data[0]; }
  ProcessId back() const { return Data[Count - 1]; }

private:
  const ProcessId *Data = nullptr;
  size_t Count = 0;
};

/// Undirected simple graph with stable, deterministic iteration order.
class Graph {
public:
  /// Sentinel slot index for "node absent".
  static constexpr uint32_t NoSlot = ~0u;

  /// Adds a node; no-op if present. Returns true when newly added.
  bool addNode(ProcessId P);

  /// Removes a node and all incident edges; no-op if absent. Returns true
  /// when the node existed.
  bool removeNode(ProcessId P);

  /// Adds the edge {A, B}; both endpoints must exist and A != B. Returns
  /// true when the edge was newly added.
  bool addEdge(ProcessId A, ProcessId B);

  /// Removes the edge {A, B}; returns true when it existed.
  bool removeEdge(ProcessId A, ProcessId B);

  /// True when the node exists.
  bool hasNode(ProcessId P) const { return slotOf(P) != NoSlot; }

  /// True when the edge {A, B} exists.
  bool hasEdge(ProcessId A, ProcessId B) const;

  /// Neighbors of \p P in ascending order; empty for unknown nodes.
  /// Copy-returning compatibility API — hot paths should use
  /// neighborView() / forEachNeighbor().
  std::vector<ProcessId> neighbors(ProcessId P) const;

  /// Zero-copy neighbors of \p P (ascending; empty for unknown nodes).
  /// Invalidated by any graph mutation.
  NeighborView neighborView(ProcessId P) const {
    uint32_t S = slotOf(P);
    if (S == NoSlot)
      return {};
    const std::vector<ProcessId> &N = Slots[S].Nbrs;
    return {N.data(), N.size()};
  }

  /// Invokes \p Fn for each neighbor of \p P in ascending order. \p Fn must
  /// not mutate the graph.
  template <typename Fn> void forEachNeighbor(ProcessId P, Fn &&F) const {
    for (ProcessId N : neighborView(P))
      F(N);
  }

  /// Degree of \p P; 0 for unknown nodes.
  size_t degree(ProcessId P) const {
    uint32_t S = slotOf(P);
    return S == NoSlot ? 0 : Slots[S].Nbrs.size();
  }

  /// All nodes in ascending order (copy; hot paths use nodesView()).
  std::vector<ProcessId> nodes() const { return NodeIds; }

  /// Zero-copy ascending node set. Invalidated by any graph mutation.
  NeighborView nodesView() const { return {NodeIds.data(), NodeIds.size()}; }

  /// Number of nodes.
  size_t nodeCount() const { return NodeIds.size(); }

  /// Number of edges.
  size_t edgeCount() const { return Edges; }

  /// Removes every node and edge. Capacity-retaining: slots (and their
  /// neighbor vectors' storage) go onto the free list ordered so that a
  /// cleared graph assigns the same slot numbers a fresh graph would —
  /// the arena-reset path reuses overlay graphs across runs.
  void clear();

  /// Validates structural invariants (symmetry, sortedness, no self-loops,
  /// id/slot cross-consistency, free-list integrity, edge count); returns
  /// true when consistent. Used by tests and assertions.
  bool checkConsistency() const;

  // --- Dense-index access (for algorithms over scratch buffers) ----------

  /// Slot of \p P, or NoSlot when absent. O(1).
  uint32_t slotOf(ProcessId P) const {
    return P < SlotOfId.size() ? SlotOfId[P] : NoSlot;
  }

  /// Number of slots ever allocated (in-use + free). Scratch buffers sized
  /// to this bound can be indexed by any in-use slot.
  size_t slotTableSize() const { return Slots.size(); }

  /// Identity occupying \p S (valid only for in-use slots).
  ProcessId slotId(uint32_t S) const { return Slots[S].Id; }

  /// Neighbor view of the node occupying in-use slot \p S.
  NeighborView slotNeighbors(uint32_t S) const {
    const std::vector<ProcessId> &N = Slots[S].Nbrs;
    return {N.data(), N.size()};
  }

private:
  /// One node's storage. Freed slots keep their neighbor vector's capacity
  /// so churn reuses it (Id is InvalidProcess while on the free list).
  struct Slot {
    ProcessId Id = InvalidProcess;
    std::vector<ProcessId> Nbrs;
  };

  std::vector<Slot> Slots;          ///< Dense node table.
  std::vector<uint32_t> FreeSlots;  ///< Recycled slot indices (LIFO).
  std::vector<uint32_t> SlotOfId;   ///< id -> slot, indexed by raw id.
  std::vector<ProcessId> NodeIds;   ///< Present ids, ascending.
  size_t Edges = 0;
};

} // namespace dyndist

#endif // DYNDIST_GRAPH_GRAPH_H
