//===- dyndist/graph/Graph.h - Undirected dynamic graph ---------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overlay graph of a dynamic system: an undirected simple graph over
/// ProcessId vertices supporting incremental mutation (nodes and edges come
/// and go as entities join and leave). Deterministic iteration order
/// (ordered containers) keeps whole experiments seed-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_GRAPH_H
#define DYNDIST_GRAPH_GRAPH_H

#include "dyndist/sim/Types.h"

#include <cstddef>
#include <map>
#include <set>
#include <vector>

namespace dyndist {

/// Undirected simple graph with stable, deterministic iteration order.
class Graph {
public:
  /// Adds a node; no-op if present. Returns true when newly added.
  bool addNode(ProcessId P);

  /// Removes a node and all incident edges; no-op if absent. Returns true
  /// when the node existed.
  bool removeNode(ProcessId P);

  /// Adds the edge {A, B}; both endpoints must exist and A != B. Returns
  /// true when the edge was newly added.
  bool addEdge(ProcessId A, ProcessId B);

  /// Removes the edge {A, B}; returns true when it existed.
  bool removeEdge(ProcessId A, ProcessId B);

  /// True when the node exists.
  bool hasNode(ProcessId P) const;

  /// True when the edge {A, B} exists.
  bool hasEdge(ProcessId A, ProcessId B) const;

  /// Neighbors of \p P in ascending order; empty for unknown nodes.
  std::vector<ProcessId> neighbors(ProcessId P) const;

  /// Degree of \p P; 0 for unknown nodes.
  size_t degree(ProcessId P) const;

  /// All nodes in ascending order.
  std::vector<ProcessId> nodes() const;

  /// Number of nodes.
  size_t nodeCount() const { return Adjacency.size(); }

  /// Number of edges.
  size_t edgeCount() const { return Edges; }

  /// Removes everything.
  void clear();

  /// Validates structural invariants (symmetry, no self-loops, edge count);
  /// returns true when consistent. Used by tests and assertions.
  bool checkConsistency() const;

  /// Read-only access to the adjacency structure (for algorithms).
  const std::map<ProcessId, std::set<ProcessId>> &adjacency() const {
    return Adjacency;
  }

private:
  std::map<ProcessId, std::set<ProcessId>> Adjacency;
  size_t Edges = 0;
};

} // namespace dyndist

#endif // DYNDIST_GRAPH_GRAPH_H
