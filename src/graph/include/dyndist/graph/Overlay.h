//===- dyndist/graph/Overlay.h - Churn-maintained overlay -------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic overlay that absorbs joins and leaves while keeping the graph
/// connected. This is the substrate of the paper's geographical dimension
/// under churn: entities attach to a few random members on arrival, and a
/// local "patch" rule stitches a departing entity's neighbors together so
/// no departure can disconnect the overlay.
///
/// Join rule: a new node links to min(TargetDegree, |V|) distinct members
/// chosen uniformly at random.
///
/// Leave rule: before removal, the departing node's neighbors N1 < ... < Nk
/// are joined into a path (N1-N2, ..., Nk-1 - Nk) if those edges are
/// missing. Any path through the departing node is thereby rerouted, so a
/// connected overlay stays connected under any sequence of single leaves.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_OVERLAY_H
#define DYNDIST_GRAPH_OVERLAY_H

#include "dyndist/graph/Graph.h"
#include "dyndist/sim/Simulator.h"
#include "dyndist/support/Random.h"

namespace dyndist {

/// How the overlay heals around a departing node.
enum class RepairMode {
  /// Join the departed node's neighbors into a path (deterministic):
  /// provably connectivity-preserving, but repeated departures inflate
  /// the survivors' degrees (every departure adds up to k-1 edges among
  /// its k neighbors).
  PatchPath,
  /// Give each orphaned neighbor one link to a uniformly random member:
  /// degrees stay near the target, but connectivity is only probabilistic
  /// — the E8 ablation measures how often it actually breaks.
  RandomRewire,
};

/// How a joining node picks its initial links.
enum class AttachMode {
  /// TargetDegree uniformly random members: expander-like, the diameter
  /// stays logarithmic in the population with high probability.
  Random,
  /// The single most recently joined member: the overlay grows a chain, so
  /// sustained arrivals push the diameter up without bound. This is the
  /// constructive witness for the paper's "unbounded diameter" classes.
  Chain,
};

/// Connectivity-preserving dynamic overlay; also usable directly as the
/// simulator's TopologyProvider.
class DynamicOverlay : public TopologyProvider {
public:
  /// \p TargetDegree is the number of links a joiner requests (>= 1 for
  /// connectivity; >= 2 recommended so the patch rule rarely inflates
  /// degrees). Ignored by AttachMode::Chain, which always links once.
  DynamicOverlay(size_t TargetDegree, Rng R,
                 AttachMode Mode = AttachMode::Random,
                 RepairMode Repair = RepairMode::PatchPath);

  /// Adds \p P and links it per the join rule.
  void join(ProcessId P);

  /// Patches around \p P and removes it (leave and crash are handled the
  /// same way: the overlay layer detects departure either way).
  void leave(ProcessId P);

  /// Seeds the overlay with an externally generated topology (e.g. from
  /// Generators.h). Clears any existing content.
  void seed(Graph Initial);

  /// Current overlay.
  const Graph &graph() const { return G; }

  /// TopologyProvider: neighbors of \p P (copy-returning compatibility
  /// path plus the zero-copy accessors, all answered straight from the
  /// flat adjacency).
  std::vector<ProcessId> neighborsOf(ProcessId P) const override;
  size_t neighborCountOf(ProcessId P) const override { return G.degree(P); }
  ProcessId neighborAtOf(ProcessId P, size_t I) const override {
    return G.neighborView(P)[I];
  }
  void forEachNeighborOf(ProcessId P,
                         FunctionRef<void(ProcessId)> F) const override {
    for (ProcessId N : G.neighborView(P))
      F(N);
  }

  /// Wires this overlay to \p S: membership hooks keep the overlay in sync
  /// with joins/leaves/crashes and the simulator routes neighbor queries
  /// here. Call once after constructing the simulator.
  void attachTo(Simulator &S);

  /// Arena-reset path: re-arms the overlay exactly as the constructor
  /// would — fresh policy knobs and random stream, empty graph — while the
  /// graph keeps every slot and neighbor-vector capacity it has faulted.
  /// Re-attach to the (reset) simulator afterwards.
  // DYNDIST_SERIAL_ONLY: rewinds shared overlay state between runs.
  void reset(size_t NewTargetDegree, Rng NewR,
             AttachMode NewMode = AttachMode::Random,
             RepairMode NewRepair = RepairMode::PatchPath);

private:
  size_t TargetDegree;
  Rng R;
  AttachMode Mode;
  RepairMode Repair;
  Graph G;
  ProcessId LastJoined = InvalidProcess;
  /// Attach-target scratch, reused across joins (capacity TargetDegree).
  std::vector<ProcessId> Picks;
};

} // namespace dyndist

#endif // DYNDIST_GRAPH_OVERLAY_H
