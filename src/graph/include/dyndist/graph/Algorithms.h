//===- dyndist/graph/Algorithms.h - Graph algorithms ------------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph analyses used to characterize overlays: BFS distances, connectivity,
/// connected components, eccentricity, and exact diameter. The diameter is
/// the load-bearing quantity of the paper's geographical dimension — the
/// one-time query is solvable with TTL flooding exactly when a bound on it
/// is known — so the experiment harnesses measure it exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_ALGORITHMS_H
#define DYNDIST_GRAPH_ALGORITHMS_H

#include "dyndist/graph/Graph.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace dyndist {

/// Hop distance from \p Source to every reachable node (Source included,
/// distance 0). Unreachable nodes are absent from the map.
std::map<ProcessId, uint64_t> bfsDistances(const Graph &G, ProcessId Source);

/// True when the graph is connected (vacuously true when empty).
bool isConnected(const Graph &G);

/// Connected components; each component's nodes ascend, and components are
/// ordered by their smallest node.
std::vector<std::vector<ProcessId>> connectedComponents(const Graph &G);

/// Eccentricity of \p Source (max distance to any reachable node); nullopt
/// when the graph is disconnected from Source's view (some node
/// unreachable) or Source is unknown.
std::optional<uint64_t> eccentricity(const Graph &G, ProcessId Source);

/// Exact diameter via all-sources BFS; nullopt when disconnected or empty.
/// O(V * E) — fine at experiment scales (thousands of nodes).
std::optional<uint64_t> diameter(const Graph &G);

/// Nodes within \p MaxHops of \p Source (Source included), ascending. This
/// is the exact coverage set of a TTL-flooding wave with TTL = MaxHops over
/// a static snapshot, used by the E2 checker.
std::vector<ProcessId> ballAround(const Graph &G, ProcessId Source,
                                  uint64_t MaxHops);

/// A BFS spanning tree rooted at \p Source: map child -> parent (the root
/// maps to itself). Only reachable nodes appear.
std::map<ProcessId, ProcessId> bfsTree(const Graph &G, ProcessId Source);

/// Articulation points (cut vertices): nodes whose departure disconnects
/// their component. The overlay's *fragility margin* — a repair rule is
/// only as good as its ability to keep this set small, since each cut
/// vertex is one crash away from a partition (experiment E8 tracks it).
/// Tarjan's low-link algorithm, iterative, O(V + E).
std::vector<ProcessId> articulationPoints(const Graph &G);

} // namespace dyndist

#endif // DYNDIST_GRAPH_ALGORITHMS_H
