//===- dyndist/graph/Generators.h - Overlay generators ----------*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic overlay topologies over nodes 0..N-1. These realize the
/// paper's geographical spectrum: rings and grids have diameter Theta(n) /
/// Theta(sqrt(n)) (locality bites hard), random and scale-free graphs have
/// logarithmic diameter (a small known bound is plausible), and the
/// generator choice is the knob of experiment E8.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_GRAPH_GENERATORS_H
#define DYNDIST_GRAPH_GENERATORS_H

#include "dyndist/graph/Graph.h"
#include "dyndist/support/Random.h"

#include <cstddef>

namespace dyndist {

/// Cycle over N nodes (N >= 3): diameter floor(N/2).
Graph makeRing(size_t N);

/// Path over N nodes (N >= 1): diameter N-1, the worst locality case.
Graph makeLine(size_t N);

/// Width x Height torus grid (both >= 2), 4-regular.
Graph makeTorus(size_t Width, size_t Height);

/// Complete graph over N nodes: the static-knowledge corner (diameter 1).
Graph makeComplete(size_t N);

/// Erdos-Renyi G(N, P). When \p ForceConnected, retries (new edges flips)
/// until connected — P must then be comfortably above the connectivity
/// threshold ln(N)/N or this loops for a long time (asserts after 1000
/// attempts).
Graph makeErdosRenyi(size_t N, double P, Rng &R, bool ForceConnected = true);

/// Random K-regular graph via the pairing model with retries (N*K even,
/// K < N). Connected with high probability for K >= 3; retries until simple
/// and, when \p ForceConnected, connected.
Graph makeRandomRegular(size_t N, size_t K, Rng &R,
                        bool ForceConnected = true);

/// Barabasi-Albert preferential attachment: each new node links to
/// \p LinksPerNode existing nodes chosen by degree. Connected by
/// construction; scale-free degree distribution, small diameter.
Graph makeBarabasiAlbert(size_t N, size_t LinksPerNode, Rng &R);

/// Random geometric graph on the unit square with connection radius
/// \p Radius. Models proximity networks (MANET-style dynamic systems).
/// When \p ForceConnected, resamples positions until connected.
Graph makeGeometric(size_t N, double Radius, Rng &R,
                    bool ForceConnected = true);

} // namespace dyndist

#endif // DYNDIST_GRAPH_GENERATORS_H
