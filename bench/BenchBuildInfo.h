//===- BenchBuildInfo.h - Per-binary build-type context stamp ---*- C++ -*-===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark's "library_build_type" context key describes how the
/// *benchmark library* was compiled (the system package reports "debug"),
/// not this binary — so a report built from it cannot tell whether the
/// recorded rates came from an optimized build. Every bench main calls
/// addBuildTypeContext() to stamp the binary's own compile mode into the
/// JSON context; dyndist-bench-report reads the key and warns loudly (and
/// annotates the report) when the stamp says unoptimized.
///
//===----------------------------------------------------------------------===//

#ifndef DYNDIST_BENCH_BUILD_INFO_H
#define DYNDIST_BENCH_BUILD_INFO_H

#include <benchmark/benchmark.h>

namespace dyndist_bench {

inline void addBuildTypeContext() {
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("dyndist_optimized_build", "1");
#else
  benchmark::AddCustomContext("dyndist_optimized_build", "0");
#endif
  // The configured CMAKE_BUILD_TYPE (empty when none was set), injected by
  // bench/CMakeLists.txt; __OPTIMIZE__ above says whether the compiler
  // optimized, this says which named configuration asked for it.
#ifdef DYNDIST_CMAKE_BUILD_TYPE
  benchmark::AddCustomContext("dyndist_build_type", DYNDIST_CMAKE_BUILD_TYPE);
#endif
}

} // namespace dyndist_bench

#endif // DYNDIST_BENCH_BUILD_INFO_H
