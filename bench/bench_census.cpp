//===- bench_census.cpp - E9: the monitoring application ------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E9: the paper motivates data aggregation as the canonical way
// to *observe* a dynamic system. This bench runs the repeated census
// service in a churning bounded-concurrency system and prints the measured
// time series next to ground truth: per round, the census count vs the
// actual live population, round validity, and the tracking error across
// churn intensities.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Census.h"
#include "dyndist/core/DynamicSystem.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dyndist;

namespace {

std::vector<CensusPoint> runSeries(uint64_t Seed, double JoinRate,
                                   uint64_t Rounds) {
  auto Cfg = std::make_shared<CensusConfig>();
  Cfg->Flood.Ttl = 9;
  Cfg->Flood.Aggregate = AggregateKind::Count;
  Cfg->Period = 60;
  Cfg->Rounds = Rounds;

  DynamicSystemConfig SysCfg;
  SysCfg.Seed = Seed;
  SysCfg.Class = {ArrivalModel::boundedConcurrency(36),
                  KnowledgeModel::knownDiameter(9)};
  SysCfg.InitialMembers = 20;
  SysCfg.Churn.JoinRate = JoinRate;
  SysCfg.Churn.MeanSession = JoinRate > 0 ? 20.0 / JoinRate : 1e9;
  SysCfg.Churn.Horizon = 100 + Rounds * 60 + 100;
  SysCfg.MonitorUntil = SysCfg.Churn.Horizon;
  // The census series is built from Observe records and presence intervals
  // only, so skip the per-message trace records.
  SysCfg.Tracing = TraceLevel::Lifecycle;

  auto FloodCfg = std::make_shared<FloodConfig>();
  FloodCfg->Ttl = Cfg->Flood.Ttl;
  auto Factory = makeFloodFactory(FloodCfg, [] { return 1; });
  DynamicSystem Sys(SysCfg, Factory);
  ProcessId Issuer =
      Sys.sim().spawn(std::make_unique<CensusIssuerActor>(Cfg, 1));
  scheduleQueryStart(Sys.sim(), 100, Issuer);

  RunLimits L;
  L.MaxTime = SysCfg.Churn.Horizon;
  Sys.run(L);
  if (!Sys.checkClassAdmissible().ok())
    return {};
  return collectCensusSeries(Sys.sim().trace(), Issuer, L.MaxTime,
                             AggregateKind::Count);
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Rounds = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;

  std::printf("E9: repeated census over a churning system "
              "(%llu rounds, period 60)\n\n",
              (unsigned long long)Rounds);

  // One detailed series at moderate churn.
  std::printf("series at join-rate 0.15 (seed 5):\n");
  Table T;
  T.setHeader({"round", "issued-at", "census", "live", "error", "valid"});
  auto Series = runSeries(5, 0.15, Rounds);
  size_t RoundNo = 0;
  for (const CensusPoint &P : Series) {
    ++RoundNo;
    long Err = static_cast<long>(P.Included) -
               static_cast<long>(P.LivePopulation);
    T.addRow({format("%zu", RoundNo),
              format("%llu", (unsigned long long)P.IssueAt),
              format("%zu", P.Included), format("%zu", P.LivePopulation),
              format("%+ld", Err), P.Valid ? "yes" : "no"});
  }
  std::printf("%s\n", T.render().c_str());

  // Tracking error vs churn intensity, averaged over seeds.
  std::printf("tracking error vs churn (5 seeds each):\n");
  Table T2;
  T2.setHeader({"join-rate", "rounds", "valid-rate", "mean-|error|",
                "max-|error|"});
  for (double Rate : {0.0, 0.05, 0.15, 0.3}) {
    OnlineStats Err;
    int Valid = 0, Total = 0;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      for (const CensusPoint &P : runSeries(Seed * 7, Rate, Rounds)) {
        ++Total;
        Valid += P.Valid;
        Err.add(std::abs(static_cast<double>(P.Included) -
                         static_cast<double>(P.LivePopulation)));
      }
    }
    T2.addRow({format("%.2f", Rate), format("%d", Total),
               format("%.2f", Total ? double(Valid) / Total : 0),
               format("%.2f", Err.mean()), format("%.0f", Err.max())});
  }
  std::printf("%s\n", T2.render().c_str());
  std::printf("Expected shape: every round of every series is spec-valid\n"
              "(the class is solvable), and the census-vs-live error stays\n"
              "small — bounded by the churn that fits inside one round's\n"
              "reply window — growing mildly with the join rate.\n");
  return 0;
}
