//===- bench_orthogonality.cpp - E5: the two axes are independent ---------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E5 (claim C4): fixing one dimension at its most benign point
// does not neutralize the other.
//
//  Sweep A: arrival axis pinned benign (finite arrival, quiescent churn),
//           knowledge axis swept hostile (known D -> unknown -> unbounded
//           chain overlay). The wave algorithm that relies on a TTL fails
//           as soon as the bound disappears; echo (which trades knowledge
//           for quiescence) keeps working — knowledge hostility is real
//           even with benign arrivals.
//
//  Sweep B: knowledge axis pinned benign (disclosed diameter bound),
//           arrival axis swept hostile (rising sustained churn). Flooding
//           with the legal TTL keeps working, but echo — which needs
//           nothing on the knowledge axis — fails: arrival hostility is
//           real even with perfect knowledge.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/aggregation/SimArena.h"
#include "dyndist/runtime/SweepRunner.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

namespace {

constexpr uint64_t E5MasterSeed = 0xE5;

unsigned SweepThreads = 0; // Set once in main from --threads/env.

/// Per-seed verdict for one sweep point.
struct PointOutcome {
  bool Counted = false;
  bool Valid = false;
};

double validRate(const ExperimentConfig &Base, int Seeds) {
  SweepConfig Sweep;
  Sweep.MasterSeed = E5MasterSeed;
  Sweep.SeedCount = static_cast<size_t>(Seeds);
  Sweep.Threads = SweepThreads;
  // One arena per worker: all of a worker's assigned seeds recycle one
  // simulator shell (byte-identical results; see SimArena.h).
  auto Outcomes = runSeedSweepWith<PointOutcome, SimArena>(
      Sweep, [&Base](SweepSeed Seed, SimArena &Arena) {
    ExperimentConfig Cfg = Base;
    Cfg.Seed = Seed.Value;
    ExperimentResult R = runQueryExperiment(Cfg, &Arena);
    PointOutcome Out;
    if (!R.ClassAdmissible || !R.QueryIssued)
      return Out;
    Out.Counted = true;
    Out.Valid = R.Verdict.valid();
    return Out;
  });
  int Counted = 0, Valid = 0;
  for (const PointOutcome &O : Outcomes) {
    Counted += O.Counted;
    Valid += O.Valid;
  }
  return Counted ? double(Valid) / Counted : 0.0;
}

} // namespace

int main(int argc, char **argv) {
  SweepThreads = sweepThreadsFromArgs(argc, argv);
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 12;

  std::printf("E5: axis orthogonality (%d seeds per point, %u threads)\n\n",
              Seeds, resolveSweepThreads(SweepThreads));

  // Sweep A: benign arrivals, hostile knowledge. The flooding column uses
  // a fixed TTL=4 guess once no bound is derivable — exactly what an
  // algorithm without the knowledge grant would have to do.
  {
    Table T;
    T.setHeader({"knowledge", "flood-ttl-source", "flood-valid",
                 "echo-valid"});
    struct KRow {
      KnowledgeModel K;
      AttachMode Attach;
      const char *TtlSource;
      uint64_t TtlOverride; // 0 = class grant.
    } Rows[] = {
        {KnowledgeModel::knownDiameter(10), AttachMode::Random, "granted D",
         0},
        {KnowledgeModel::boundedUnknownDiameter(), AttachMode::Random,
         "blind guess 4", 4},
        {KnowledgeModel::unboundedDiameter(), AttachMode::Chain,
         "blind guess 4", 4},
    };
    for (const KRow &Row : Rows) {
      ExperimentConfig Base;
      Base.Class = {ArrivalModel::finiteArrival(60), Row.K};
      Base.Attach = Row.Attach;
      Base.Churn.JoinRate = 0.3; // Brisk arrivals, but they quiesce.
      Base.Churn.MeanSession = 150;
      Base.Churn.QuiesceAt = 150;
      Base.QueryAt = 200;
      Base.Horizon = 1200;
      Base.UseRecommended = false;

      Base.Algorithm = RecommendedAlgorithm::FloodingKnownDiameter;
      Base.TtlOverride = Row.TtlOverride;
      double Flood = validRate(Base, Seeds);

      Base.Algorithm = RecommendedAlgorithm::EchoTermination;
      Base.TtlOverride = 0;
      double Echo = validRate(Base, Seeds);

      T.addRow({Row.K.name(), Row.TtlSource, format("%.2f", Flood),
                format("%.2f", Echo)});
    }
    std::printf("Sweep A: arrival axis benign (finite, quiescent)\n%s\n",
                T.render().c_str());
  }

  // Sweep B: benign knowledge (disclosed D), hostile arrivals.
  {
    Table T;
    T.setHeader({"join-rate", "flood-valid", "echo-valid"});
    for (double Rate : {0.0, 0.1, 0.2, 0.4}) {
      ExperimentConfig Base;
      Base.Class = {ArrivalModel::boundedConcurrency(40),
                    KnowledgeModel::knownDiameter(10)};
      Base.InitialMembers = 24;
      Base.Churn.JoinRate = Rate;
      Base.Churn.MeanSession = Rate > 0 ? 24.0 / Rate : 1e9;
      Base.Churn.Horizon = 600;
      Base.QueryAt = 200;
      Base.Horizon = 1200;
      Base.UseRecommended = false;

      Base.Algorithm = RecommendedAlgorithm::FloodingKnownDiameter;
      double Flood = validRate(Base, Seeds);
      Base.Algorithm = RecommendedAlgorithm::EchoTermination;
      double Echo = validRate(Base, Seeds);
      T.addRow({format("%.2f", Rate), format("%.2f", Flood),
                format("%.2f", Echo)});
    }
    std::printf("Sweep B: knowledge axis benign (D disclosed)\n%s\n",
                T.render().c_str());
  }

  std::printf("Expected shape: in sweep A the flooding column collapses as\n"
              "knowledge degrades while echo stays at 1.0; in sweep B echo\n"
              "collapses as churn rises while flooding stays at 1.0. Each\n"
              "axis defeats the algorithm that has no answer to it: the\n"
              "dimensions are orthogonal (claim C4).\n");
  return 0;
}
