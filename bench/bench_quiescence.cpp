//===- bench_quiescence.cpp - E3: echo and quiescence ---------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E3 (claim C2): in a finite-arrival system whose churn
// quiesces at a known instant, sweep the query issue time across the
// quiescence boundary. The echo wave needs no diameter knowledge, but its
// termination detection only converges once membership stops moving:
// queries issued well before quiescence frequently hang (a departed child
// owes an echo forever), queries issued after it always terminate and meet
// the spec.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

int main(int argc, char **argv) {
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 15;
  const SimTime QuiesceAt = 400;

  std::printf("E3: echo-wave query vs quiescence (claim C2); churn "
              "quiesces at t=%llu, %d seeds per row\n\n",
              (unsigned long long)QuiesceAt, Seeds);

  Table T;
  T.setHeader({"query-at", "regime", "runs", "terminated", "valid",
               "mean-latency", "p90-latency"});

  for (SimTime QueryAt : {100, 200, 300, 380, 420, 500, 700}) {
    int Counted = 0, Terminated = 0, Valid = 0;
    std::vector<double> Latencies;
    for (int Seed = 1; Seed <= Seeds; ++Seed) {
      ExperimentConfig Cfg;
      Cfg.Seed = static_cast<uint64_t>(Seed) * 389 + 11;
      Cfg.Class = {ArrivalModel::finiteArrival(150),
                   KnowledgeModel::boundedUnknownDiameter()};
      Cfg.InitialMembers = 20;
      Cfg.Churn.JoinRate = 0.15;
      Cfg.Churn.MeanSession = 120;
      Cfg.Churn.QuiesceAt = QuiesceAt;
      Cfg.QueryAt = QueryAt;
      Cfg.Horizon = 1600;

      ExperimentResult R = runQueryExperiment(Cfg);
      if (!R.ClassAdmissible || !R.QueryIssued)
        continue;
      ++Counted;
      if (R.Verdict.Terminated) {
        ++Terminated;
        Latencies.push_back(
            static_cast<double>(R.Verdict.ResponseTime - QueryAt));
      }
      if (R.Verdict.valid())
        ++Valid;
    }
    Summary Lat = Summary::of(Latencies);
    T.addRow({format("%llu", (unsigned long long)QueryAt),
              QueryAt < QuiesceAt ? "churning" : "quiescent",
              format("%d", Counted),
              format("%.2f", Counted ? double(Terminated) / Counted : 0),
              format("%.2f", Counted ? double(Valid) / Counted : 0),
              format("%.1f", Lat.Mean), format("%.1f", Lat.P90)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: the valid rate is 1.00 for every row issued\n"
              "after quiescence and drops the deeper the query is issued\n"
              "into the churning phase.\n");
  return 0;
}
