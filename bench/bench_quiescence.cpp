//===- bench_quiescence.cpp - E3: echo and quiescence ---------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E3 (claim C2): in a finite-arrival system whose churn
// quiesces at a known instant, sweep the query issue time across the
// quiescence boundary. The echo wave needs no diameter knowledge, but its
// termination detection only converges once membership stops moving:
// queries issued well before quiescence frequently hang (a departed child
// owes an echo forever), queries issued after it always terminate and meet
// the spec.
//
// Seeds are sharded across threads by SweepRunner (--threads N /
// DYNDIST_THREADS); every row pairs the same derived seeds against every
// query time, and the aggregate is byte-identical at any thread count.
// Run with any --benchmark_* flag to execute only the BM_SweepQuiescence
// wall-clock section, merged into BENCH_kernel.json by
// tools/dyndist-bench-report --sweep.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/aggregation/SimArena.h"
#include "dyndist/runtime/SweepRunner.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include "BenchBuildInfo.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

using namespace dyndist;

namespace {

constexpr uint64_t E3MasterSeed = 0xE3;
constexpr SimTime QuiesceAt = 400;

/// Per-seed verdict for one query-time row.
struct RowOutcome {
  bool Counted = false;
  bool Terminated = false;
  bool Valid = false;
  double Latency = 0.0;
};

RowOutcome runRow(SimTime QueryAt, uint64_t Seed, SimArena *Arena) {
  ExperimentConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.Class = {ArrivalModel::finiteArrival(150),
               KnowledgeModel::boundedUnknownDiameter()};
  Cfg.InitialMembers = 20;
  Cfg.Churn.JoinRate = 0.15;
  Cfg.Churn.MeanSession = 120;
  Cfg.Churn.QuiesceAt = QuiesceAt;
  Cfg.QueryAt = QueryAt;
  Cfg.Horizon = 1600;

  ExperimentResult R = runQueryExperiment(Cfg, Arena);
  RowOutcome Out;
  if (!R.ClassAdmissible || !R.QueryIssued)
    return Out;
  Out.Counted = true;
  Out.Terminated = R.Verdict.Terminated;
  Out.Valid = R.Verdict.valid();
  if (R.Verdict.Terminated)
    Out.Latency = static_cast<double>(R.Verdict.ResponseTime - QueryAt);
  return Out;
}

std::vector<RowOutcome> sweepRow(SimTime QueryAt, int Seeds,
                                 unsigned Threads) {
  SweepConfig Sweep;
  Sweep.MasterSeed = E3MasterSeed;
  Sweep.SeedCount = static_cast<size_t>(Seeds);
  Sweep.Threads = Threads;
  // One arena per worker: all of a worker's assigned seeds recycle one
  // simulator shell (byte-identical results; see SimArena.h).
  return runSeedSweepWith<RowOutcome, SimArena>(
      Sweep, [QueryAt](SweepSeed Seed, SimArena &Arena) {
        return runRow(QueryAt, Seed.Value, &Arena);
      });
}

// --- Sweep wall-clock section (google-benchmark) --------------------------

void BM_SweepQuiescence(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  const int Seeds = 24;
  uint64_t Ran = 0;
  for (auto _ : State) {
    auto Outcomes = sweepRow(500, Seeds, Threads);
    Ran += Outcomes.size();
    benchmark::DoNotOptimize(Outcomes);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Ran));
}

void registerSweepBenchmarks() {
  auto *Bench =
      benchmark::RegisterBenchmark("BM_SweepQuiescence", BM_SweepQuiescence);
  Bench->ArgName("threads")->Unit(benchmark::kMillisecond)->UseRealTime();
  std::vector<unsigned> Ladder = {1, 2, 4};
  unsigned HW = resolveSweepThreads(0);
  if (std::find(Ladder.begin(), Ladder.end(), HW) == Ladder.end())
    Ladder.push_back(HW);
  for (unsigned T : Ladder)
    Bench->Arg(static_cast<int64_t>(T));
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]).rfind("--benchmark", 0) == 0) {
      registerSweepBenchmarks();
      dyndist_bench::addBuildTypeContext();
      ::benchmark::Initialize(&argc, argv);
      ::benchmark::RunSpecifiedBenchmarks();
      ::benchmark::Shutdown();
      return 0;
    }
  }

  unsigned Threads = sweepThreadsFromArgs(argc, argv);
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 15;

  std::printf("E3: echo-wave query vs quiescence (claim C2); churn "
              "quiesces at t=%llu, %d seeds per row, %u threads\n\n",
              (unsigned long long)QuiesceAt, Seeds,
              resolveSweepThreads(Threads));

  Table T;
  T.setHeader({"query-at", "regime", "runs", "terminated", "valid",
               "mean-latency", "p90-latency"});

  for (SimTime QueryAt : {100, 200, 300, 380, 420, 500, 700}) {
    int Counted = 0, Terminated = 0, Valid = 0;
    std::vector<double> Latencies;
    for (const RowOutcome &O : sweepRow(QueryAt, Seeds, Threads)) {
      if (!O.Counted)
        continue;
      ++Counted;
      if (O.Terminated) {
        ++Terminated;
        Latencies.push_back(O.Latency);
      }
      if (O.Valid)
        ++Valid;
    }
    Summary Lat = Summary::of(Latencies);
    T.addRow({format("%llu", (unsigned long long)QueryAt),
              QueryAt < QuiesceAt ? "churning" : "quiescent",
              format("%d", Counted),
              format("%.2f", Counted ? double(Terminated) / Counted : 0),
              format("%.2f", Counted ? double(Valid) / Counted : 0),
              format("%.1f", Lat.Mean), format("%.1f", Lat.P90)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: the valid rate is 1.00 for every row issued\n"
              "after quiescence and drops the deeper the query is issued\n"
              "into the churning phase.\n");
  return 0;
}
