//===- bench_churn_gossip.cpp - E4: graceful degradation ------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E4 (claim C3's flip side): sweep churn intensity and compare
// how the four query algorithms fail. Wave algorithms are all-or-nothing —
// flooding with a legal TTL keeps meeting the spec, echo stops terminating,
// the DFS token collapses to its issuer-only answer — while gossip always
// answers and its census error (reported population vs live population)
// grows smoothly with churn.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/aggregation/SimArena.h"
#include "dyndist/aggregation/Token.h"
#include "dyndist/runtime/KernelLoad.h"
#include "dyndist/runtime/SweepRunner.h"
#include "dyndist/runtime/TraceQuery.h"
#include "dyndist/sim/TraceColumnar.h"
#include "dyndist/sim/TraceIO.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include "BenchBuildInfo.h"

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include <sys/resource.h>

using namespace dyndist;

namespace {

constexpr uint64_t E4MasterSeed = 0xE4;

unsigned SweepThreads = 0; // Set once in main from --threads/env.

struct Cell {
  int Runs = 0;
  double Terminated = 0, Valid = 0, Coverage = 0, CensusError = 0;
  double MsgPerMember = 0;
  double UnitsPerMember = 0;
};

/// Per-seed partial aggregates: each OnlineStats holds 0 or 1 samples and
/// is merged into the cell totals in seed-index order, so the reduction is
/// byte-identical at any thread count.
struct SeedPartial {
  bool Counted = false;
  bool Terminated = false;
  bool Valid = false;
  OnlineStats Cov, Err, Msg, Units;
};

Cell sweep(RecommendedAlgorithm Algo, double JoinRate, int Seeds,
           bool GossipDigest = false) {
  SweepConfig Sweep;
  Sweep.MasterSeed = E4MasterSeed;
  Sweep.SeedCount = static_cast<size_t>(Seeds);
  Sweep.Threads = SweepThreads;
  // One arena per worker: all of a worker's assigned seeds recycle one
  // simulator shell (byte-identical results; see SimArena.h).
  auto Partials = runSeedSweepWith<SeedPartial, SimArena>(
      Sweep, [&](SweepSeed Seed, SimArena &Arena) {
    ExperimentConfig Cfg;
    Cfg.Seed = Seed.Value;
    Cfg.Class = {ArrivalModel::boundedConcurrency(40),
                 KnowledgeModel::knownDiameter(10)};
    Cfg.UseRecommended = false;
    Cfg.Algorithm = Algo;
    Cfg.InitialMembers = 24;
    Cfg.Churn.JoinRate = JoinRate;
    Cfg.Churn.MeanSession = JoinRate > 0 ? 24.0 / JoinRate : 1e9;
    Cfg.Churn.Horizon = 600;
    Cfg.QueryAt = 200;
    Cfg.Horizon = 1200;
    Cfg.Gossip.ReportAfter = 60;
    Cfg.Gossip.Rounds = 30;
    Cfg.Gossip.RoundEvery = 2;
    Cfg.Gossip.DigestMode = GossipDigest;

    ExperimentResult R = runQueryExperiment(Cfg, &Arena);
    SeedPartial P;
    if (!R.ClassAdmissible || !R.QueryIssued)
      return P;
    P.Counted = true;
    P.Terminated = R.Verdict.Terminated;
    P.Valid = R.Verdict.valid();
    if (R.Verdict.Terminated) {
      P.Cov.add(R.Verdict.Coverage);
      if (R.MembersAtResponse > 0)
        P.Err.add(std::abs(double(R.Verdict.IncludedCount) -
                           double(R.MembersAtResponse)) /
                  double(R.MembersAtResponse));
    }
    if (R.MembersAtQuery > 0) {
      P.Msg.add(double(R.Stats.MessagesSent) / double(R.MembersAtQuery));
      P.Units.add(double(R.Stats.PayloadUnits) / double(R.MembersAtQuery));
    }
    return P;
  });

  Cell Out;
  OnlineStats Cov, Err, Msg, Units;
  int Term = 0, Val = 0, Counted = 0;
  for (const SeedPartial &P : Partials) {
    if (!P.Counted)
      continue;
    ++Counted;
    Term += P.Terminated;
    Val += P.Valid;
    Cov.merge(P.Cov);
    Err.merge(P.Err);
    Msg.merge(P.Msg);
    Units.merge(P.Units);
  }
  Out.Runs = Counted;
  if (Counted > 0) {
    Out.Terminated = double(Term) / Counted;
    Out.Valid = double(Val) / Counted;
  }
  Out.Coverage = Cov.mean();
  Out.CensusError = Err.mean();
  Out.MsgPerMember = Msg.mean();
  Out.UnitsPerMember = Units.mean();
  return Out;
}

// --- Kernel throughput section (google-benchmark) -------------------------
//
// Measures raw kernel events/sec under a gossip + crash/respawn churn load
// at N = 1000 — the hot loop every experiment above funnels through. Run
// with any --benchmark_* flag to execute only this section, e.g.:
//   bench_churn_gossip --benchmark_filter=BM_Kernel
//     --benchmark_out=churn_gossip.json --benchmark_out_format=json
// tools/dyndist-bench-report drives exactly that and merges the JSON into
// BENCH_kernel.json.

KernelLoadConfig churnGossipLoad() {
  KernelLoadConfig Cfg;
  Cfg.Seed = 42;
  Cfg.Processes = 1000;
  Cfg.Horizon = 1500;
  Cfg.GossipEvery = 4;
  Cfg.GossipFanout = 2;
  Cfg.ChurnEvery = 25;
  return Cfg;
}

void BM_KernelChurnGossip(benchmark::State &State, TraceLevel Level) {
  KernelLoadConfig Cfg = churnGossipLoad();
  uint64_t Events = 0;
  for (auto _ : State) {
    KernelLoadResult R = runKernelLoad(Cfg, Level);
    Events += R.Stats.EventsExecuted;
    benchmark::DoNotOptimize(R);
  }
  // items_per_second in the report is kernel events/sec.
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK_CAPTURE(BM_KernelChurnGossip, n1000_trace_off, TraceLevel::Off)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KernelChurnGossip, n1000_trace_lifecycle,
                  TraceLevel::Lifecycle)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KernelChurnGossip, n1000_trace_full, TraceLevel::Full)
    ->Unit(benchmark::kMillisecond);

// --- Space-sharded kernel section (google-benchmark) -----------------------
//
// The same gossip + churn load at n = 10^5 and n = 10^6, run through the
// space-sharded engine (KernelLoadConfig::Shards). The shards argument is
// the ladder: 0 is the legacy single-stream kernel (a different schedule,
// kept as the reference point), 1/2/4 select the sharded engine, whose
// schedule — and therefore whose event count — is byte-identical at every
// rung. tools/dyndist-bench-report --shard runs exactly these and merges
// them into BENCH_kernel.json with speedup_vs_1_shard per rung.

KernelLoadConfig largeLoad(size_t Processes, SimTime Horizon,
                           unsigned Shards) {
  KernelLoadConfig Cfg;
  Cfg.Seed = 42;
  Cfg.Processes = Processes;
  Cfg.Horizon = Horizon;
  Cfg.GossipEvery = 4;
  Cfg.GossipFanout = 2;
  Cfg.ChurnEvery = 25;
  Cfg.Shards = Shards;
  return Cfg;
}

void BM_KernelSharded(benchmark::State &State) {
  KernelLoadConfig Cfg = largeLoad(
      100000, 60, static_cast<unsigned>(State.range(0)));
  uint64_t Events = 0;
  auto Begin = std::chrono::steady_clock::now();
  for (auto _ : State) {
    KernelLoadResult R = runKernelLoad(Cfg, TraceLevel::Off);
    Events += R.Stats.EventsExecuted;
    benchmark::DoNotOptimize(R);
  }
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Begin)
          .count();
  State.SetItemsProcessed(static_cast<int64_t>(Events));
  // items_per_second divides by the main thread's CPU clock, which never
  // bills worker-thread cycles — the K > 1 rungs would report inflated
  // rates. This counter is the honest wall-clock rate; the report tool
  // prefers it over items_per_second when present.
  State.counters["events_per_second_wall"] =
      Wall > 0.0 ? static_cast<double>(Events) / Wall : 0.0;
}
// Real (wall-clock) time: the K > 1 rungs run worker threads whose cycles
// the default main-thread CPU clock would not bill, overstating the rate.
BENCHMARK(BM_KernelSharded)
    ->ArgName("shards")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The acceptance run: one million processes to completion under gossip +
/// churn, with the process-wide peak RSS recorded alongside the rate. One
/// iteration — the run is seconds long and the counter is a memory budget,
/// not a timing sample.
void BM_KernelShardedMillion(benchmark::State &State) {
  KernelLoadConfig Cfg = largeLoad(
      1000000, 30, static_cast<unsigned>(State.range(0)));
  uint64_t Events = 0;
  auto Begin = std::chrono::steady_clock::now();
  for (auto _ : State) {
    KernelLoadResult R = runKernelLoad(Cfg, TraceLevel::Off);
    Events += R.Stats.EventsExecuted;
    benchmark::DoNotOptimize(R);
  }
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Begin)
          .count();
  State.SetItemsProcessed(static_cast<int64_t>(Events));
  State.counters["events_per_second_wall"] =
      Wall > 0.0 ? static_cast<double>(Events) / Wall : 0.0;
  struct rusage RU;
  getrusage(RUSAGE_SELF, &RU);
  State.counters["peak_rss_mb"] =
      static_cast<double>(RU.ru_maxrss) / 1024.0;
}
BENCHMARK(BM_KernelShardedMillion)
    ->ArgName("shards")
    ->Arg(1)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Trace sink section (google-benchmark) --------------------------------
//
// The trace-archival hot path: stream the exact trace_full record sequence
// of BM_KernelChurnGossip through each on-disk sink, and aggregate the
// archived columnar file back through the sharded query engine. The record
// stream is captured once (in memory) so items/sec is purely the sink's
// serialization + write cost, not kernel time. tools/dyndist-bench-report
// --trace runs these and merges them into BENCH_kernel.json, gating
// columnar-vs-text on a minimum speedup.

/// TraceSink that collects into an in-memory Trace (capture fixture).
struct CollectSink final : TraceSink {
  Trace T;
  void append(const TraceEvent &E) override { T.append(TraceEvent(E)); }
};

/// The trace_full record stream of BM_KernelChurnGossip, captured once per
/// process.
const Trace &churnGossipFullTrace() {
  static const Trace T = [] {
    CollectSink Sink;
    KernelLoadConfig Cfg = churnGossipLoad();
    Cfg.Sink = &Sink;
    runKernelLoad(Cfg, TraceLevel::Full);
    return std::move(Sink.T);
  }();
  return T;
}

constexpr const char *TraceSinkBenchPath = "bench_trace_sink.tmp";
constexpr const char *TraceQueryBenchPath = "bench_trace_query.dytr";

uint64_t fileSize(const char *Path) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return 0;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fclose(F);
  return Size > 0 ? static_cast<uint64_t>(Size) : 0;
}

/// Streams the captured record sequence through \p Sink-like W (open,
/// append xN, close); items/sec is trace records archived per second.
template <typename SinkT>
void runTraceSinkBench(benchmark::State &State) {
  const Trace &T = churnGossipFullTrace();
  uint64_t Records = 0;
  for (auto _ : State) {
    SinkT Sink;
    Status S = Sink.open(TraceSinkBenchPath);
    if (!S.ok()) {
      State.SkipWithError("sink open failed");
      return;
    }
    for (const TraceEvent &E : T.events())
      Sink.append(E);
    S = Sink.close();
    if (!S.ok()) {
      State.SkipWithError("sink close failed");
      return;
    }
    Records += T.events().size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Records));
  State.counters["bytes_per_event"] =
      T.events().empty()
          ? 0.0
          : static_cast<double>(fileSize(TraceSinkBenchPath)) /
                static_cast<double>(T.events().size());
  std::remove(TraceSinkBenchPath);
}

void BM_TraceSinkText(benchmark::State &State) {
  runTraceSinkBench<JsonLinesTraceSink>(State);
}
BENCHMARK(BM_TraceSinkText)->Unit(benchmark::kMillisecond);

void BM_TraceSinkColumnar(benchmark::State &State) {
  runTraceSinkBench<ColumnarTraceWriter>(State);
}
BENCHMARK(BM_TraceSinkColumnar)->Unit(benchmark::kMillisecond);

/// group-by kind over the archived columnar trace at K scan threads;
/// events_per_second_wall is the honest cross-thread rate (items_per_second
/// only bills the main thread's CPU clock).
void BM_QueryAggregate(benchmark::State &State) {
  const Trace &T = churnGossipFullTrace();
  static const bool Written = [&] {
    return writeColumnarTraceFile(T, TraceQueryBenchPath).ok();
  }();
  auto Src = TraceQuerySource::open(TraceQueryBenchPath);
  if (!Written || !Src.ok()) {
    State.SkipWithError("cannot open columnar query fixture");
    return;
  }
  TraceFilter Filter;
  QueryOptions Opts;
  Opts.Threads = static_cast<unsigned>(State.range(0));
  uint64_t Events = 0;
  auto Begin = std::chrono::steady_clock::now();
  for (auto _ : State) {
    auto R = queryGroupBy(**Src, Filter, GroupField::Kind, Opts);
    if (!R.ok()) {
      State.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(*R);
    Events += (*Src)->totalEvents();
  }
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Begin)
          .count();
  State.SetItemsProcessed(static_cast<int64_t>(Events));
  State.counters["events_per_second_wall"] =
      Wall > 0.0 ? static_cast<double>(Events) / Wall : 0.0;
}
BENCHMARK(BM_QueryAggregate)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Messaging allocation section (google-benchmark) ----------------------
//
// Micro-benchmarks for the per-message and per-timer allocation cost of the
// kernel hot path, written against the public API only so the identical
// code measures the shared_ptr/std::function implementation (captured in
// bench/message_baseline_shared_ptr.json) and the pooled intrusive-refcount
// / SBO-callable implementation alike. tools/dyndist-bench-report --message
// runs exactly these sections and merges them into BENCH_kernel.json.

// Three payload shapes spanning the body pool's size buckets, mirroring the
// protocol mix: a bare scalar (heartbeat-like), a mid-size fixed slice
// (peer-sampling shuffle), and a large digest. Fixed arrays, not vectors:
// the measured allocation is the body itself.
struct PoolSmallMsg : MessageBody {
  static constexpr int KindId = 7101;
  explicit PoolSmallMsg(uint64_t V) : MessageBody(KindId), V(V) {}
  uint64_t V;
};

struct PoolMediumMsg : MessageBody {
  static constexpr int KindId = 7102;
  explicit PoolMediumMsg(uint64_t Seed) : MessageBody(KindId) {
    for (size_t I = 0; I != Slice.size(); ++I)
      Slice[I] = Seed + I;
  }
  size_t weight() const override { return 1 + Slice.size(); }
  std::array<uint64_t, 6> Slice;
};

struct PoolLargeMsg : MessageBody {
  static constexpr int KindId = 7103;
  explicit PoolLargeMsg(uint64_t Seed) : MessageBody(KindId) {
    for (size_t I = 0; I != Digest.size(); ++I)
      Digest[I] = Seed ^ I;
  }
  size_t weight() const override { return 1 + Digest.size(); }
  std::array<uint64_t, 30> Digest;
};

/// Every tick each actor sends Fanout messages to uniform universe members,
/// cycling through the three payload shapes; receivers only read the body.
/// All message bodies are created and retired inside the run, so items/sec
/// is body allocations (+ frees) per second through the kernel.
class PoolChurnActor : public Actor {
public:
  PoolChurnActor(size_t Universe, unsigned Fanout)
      : Universe(Universe), Fanout(Fanout) {}

  void onStart(Context &Ctx) override { Ctx.setTimer(1); }

  void onTimer(Context &Ctx, TimerId) override {
    for (unsigned I = 0; I != Fanout; ++I) {
      ProcessId To = Ctx.rng().nextBelow(Universe);
      switch (++Sends % 3) {
      case 0:
        Ctx.send(To, makeBody<PoolSmallMsg>(Sends));
        break;
      case 1:
        Ctx.send(To, makeBody<PoolMediumMsg>(Sends));
        break;
      default:
        Ctx.send(To, makeBody<PoolLargeMsg>(Sends));
        break;
      }
    }
    Ctx.setTimer(1);
  }

  void onMessage(Context &, ProcessId, const MessageBody &Body) override {
    switch (Body.kind()) {
    case PoolSmallMsg::KindId:
      Sink += bodyAs<PoolSmallMsg>(Body).V;
      break;
    case PoolMediumMsg::KindId:
      Sink += bodyAs<PoolMediumMsg>(Body).Slice[0];
      break;
    default:
      Sink += bodyAs<PoolLargeMsg>(Body).Digest[0];
      break;
    }
  }

private:
  size_t Universe;
  unsigned Fanout;
  uint64_t Sends = 0;
  uint64_t Sink = 0;
};

void BM_MessagePoolChurn(benchmark::State &State) {
  constexpr size_t N = 32;
  constexpr unsigned Fanout = 4;
  constexpr SimTime Horizon = 1000;
  uint64_t Msgs = 0;
  for (auto _ : State) {
    Simulator S(42);
    S.setTraceLevel(TraceLevel::Off);
    for (size_t I = 0; I != N; ++I)
      S.spawn(std::make_unique<PoolChurnActor>(N, Fanout));
    RunLimits L;
    L.MaxTime = Horizon;
    S.run(L);
    Msgs += S.stats().MessagesSent;
    benchmark::DoNotOptimize(S.stats());
  }
  // items_per_second is message bodies allocated (and retired) per second.
  State.SetItemsProcessed(static_cast<int64_t>(Msgs));
}
BENCHMARK(BM_MessagePoolChurn)->Unit(benchmark::kMillisecond);

/// Self-rescheduling driver: every tick schedules a burst of one-shot
/// actions whose captures (32 bytes) exceed libstdc++'s std::function SSO
/// but fit the kernel's SBO callable — exactly the ChurnDriver /
/// Membership-round capture shape.
void scheduleBurstTick(Simulator &S, uint64_t *Sink, SimTime Horizon,
                       unsigned Burst) {
  SimTime Next = S.now() + 1;
  if (Next > Horizon)
    return;
  S.scheduleAt(Next, [Sink, Horizon, Burst](Simulator &Sim) {
    for (unsigned I = 0; I != Burst; ++I) {
      uint64_t A = Sim.rng().next();
      uint64_t B = I;
      ProcessId P = I;
      Sim.scheduleAfter(1 + (I & 3), [Sink, A, B, P](Simulator &) {
        *Sink += A + B + P;
      });
    }
    scheduleBurstTick(Sim, Sink, Horizon, Burst);
  });
}

void BM_TimerScheduleBurst(benchmark::State &State) {
  constexpr SimTime Horizon = 2000;
  constexpr unsigned Burst = 16;
  uint64_t Events = 0;
  for (auto _ : State) {
    Simulator S(7);
    S.setTraceLevel(TraceLevel::Off);
    uint64_t Sink = 0;
    scheduleBurstTick(S, &Sink, Horizon, Burst);
    RunLimits L;
    L.MaxTime = Horizon + Burst;
    S.run(L);
    Events += S.stats().EventsExecuted;
    benchmark::DoNotOptimize(Sink);
  }
  // items_per_second is scheduled actions executed per second.
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_TimerScheduleBurst)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]).rfind("--benchmark", 0) == 0) {
      dyndist_bench::addBuildTypeContext();
      ::benchmark::Initialize(&argc, argv);
      ::benchmark::RunSpecifiedBenchmarks();
      ::benchmark::Shutdown();
      std::remove(TraceSinkBenchPath);
      std::remove(TraceQueryBenchPath);
      return 0;
    }
  }

  SweepThreads = sweepThreadsFromArgs(argc, argv);
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 12;

  std::printf("E4: algorithm behavior vs churn rate (%d seeds/point, "
              "%u threads)\n\n",
              Seeds, resolveSweepThreads(SweepThreads));

  struct AlgoCase {
    RecommendedAlgorithm Algo;
    bool Digest;
    const char *Name;
  } Algos[] = {
      {RecommendedAlgorithm::FloodingKnownDiameter, false, "flood(D)"},
      {RecommendedAlgorithm::EchoTermination, false, "echo"},
      {RecommendedAlgorithm::GossipBestEffort, false, "gossip"},
      {RecommendedAlgorithm::GossipBestEffort, true, "gossip-digest"},
  };

  Table T;
  T.setHeader({"algorithm", "join-rate", "runs", "terminated", "valid",
               "coverage", "census-err", "msgs/member", "units/member"});
  for (const auto &A : Algos) {
    for (double Rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
      Cell C = sweep(A.Algo, Rate, Seeds, A.Digest);
      T.addRow({A.Name, format("%.2f", Rate), format("%d", C.Runs),
                format("%.2f", C.Terminated), format("%.2f", C.Valid),
                format("%.2f", C.Coverage), format("%.2f", C.CensusError),
                format("%.1f", C.MsgPerMember),
                format("%.0f", C.UnitsPerMember)});
    }
  }
  std::printf("%s\n", T.render().c_str());

  // The DFS token baseline, run separately (it is not an Experiment.h
  // algorithm family): single-point-of-state fragility.
  std::printf("token baseline (DFS walk, timeout report):\n");
  Table T2;
  T2.setHeader({"join-rate", "runs", "terminated", "valid", "coverage"});
  for (double Rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    SweepConfig Sweep;
    Sweep.MasterSeed = E4MasterSeed + 1; // Distinct stream from the E4 grid.
    Sweep.SeedCount = static_cast<size_t>(Seeds);
    Sweep.Threads = SweepThreads;
    auto Partials = runSeedSweep<SeedPartial>(Sweep, [Rate](SweepSeed Seed) {
      DynamicSystemConfig SysCfg;
      SysCfg.Seed = Seed.Value;
      SysCfg.Class = {ArrivalModel::boundedConcurrency(40),
                      KnowledgeModel::knownDiameter(10)};
      SysCfg.InitialMembers = 24;
      SysCfg.Churn.JoinRate = Rate;
      SysCfg.Churn.MeanSession = Rate > 0 ? 24.0 / Rate : 1e9;
      SysCfg.Churn.Horizon = 600;
      SysCfg.MonitorUntil = 1200;
      // The token verdict reads Observe records and presence intervals.
      SysCfg.Tracing = TraceLevel::Lifecycle;

      auto TokenCfg = std::make_shared<TokenConfig>();
      TokenCfg->TimeoutAfter = 400;
      auto Counter = std::make_shared<int64_t>(0);
      auto Factory =
          makeTokenFactory(TokenCfg, [Counter] { return ++*Counter; });
      DynamicSystem Sys(SysCfg, Factory);
      ProcessId Issuer = Sys.sim().spawn(Factory());
      scheduleQueryStart(Sys.sim(), 200, Issuer);
      RunLimits L;
      L.MaxTime = 1200;
      Sys.run(L);
      SeedPartial P;
      if (!Sys.checkClassAdmissible().ok())
        return P;
      auto Issue = Sys.sim().trace().firstObservation(Issuer, OtqIssueKey);
      if (!Issue)
        return P;
      QueryVerdict V =
          checkOneTimeQuery(Sys.sim().trace(), Issuer, Issue->Time, 1200);
      P.Counted = true;
      P.Terminated = V.Terminated;
      P.Valid = V.valid();
      if (V.Terminated)
        P.Cov.add(V.Coverage);
      return P;
    });
    int Counted = 0, Term = 0, Val = 0;
    OnlineStats Cov;
    for (const SeedPartial &P : Partials) {
      if (!P.Counted)
        continue;
      ++Counted;
      Term += P.Terminated;
      Val += P.Valid;
      Cov.merge(P.Cov);
    }
    T2.addRow({format("%.2f", Rate), format("%d", Counted),
               format("%.2f", Counted ? double(Term) / Counted : 0),
               format("%.2f", Counted ? double(Val) / Counted : 0),
               format("%.2f", Cov.mean())});
  }
  std::printf("%s\n", T2.render().c_str());
  std::printf(
      "Expected shape: flood degrades last; echo's termination rate falls\n"
      "monotonically with churn; gossip's census error grows smoothly\n"
      "while it keeps terminating; the token's validity is erratic — one\n"
      "unlucky in-flight departure loses its entire state, so outcomes\n"
      "swing run to run rather than degrading gradually.\n");
  return 0;
}
