//===- bench_registers.cpp - E6: register construction costs --------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E6 (claim C5, registers): throughput and base-object cost of
// the register self-implementations as the failure budget t grows.
//
//  - google-benchmark section: ns/op for writes and reads of the t+1
//    stack construction, the 2t+1 majority construction, and the
//    multi-reader composition.
//  - table section: base invocations per operation (the model-level cost
//    the constructions are compared by) and a failure-survival check —
//    after crashing a full budget of t bases mid-run, the stress history
//    must still be atomic.
//
// Expected shape: per-op base cost is (t+1) for the stack construction vs
// 2*(2t+1) for a majority read (two quorum phases) — the price of
// tolerating nonresponsiveness — and the multi-reader composition scales
// with the reader count, not with contention.
//
//===----------------------------------------------------------------------===//

#include "dyndist/registers/MajorityRegister.h"
#include "dyndist/registers/MultiReaderRegister.h"
#include "dyndist/registers/StackRegister.h"
#include "dyndist/runtime/StressHarness.h"
#include "dyndist/support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace dyndist;

static void BM_StackWrite(benchmark::State &State) {
  StackRegister R(static_cast<size_t>(State.range(0)));
  int64_t V = 0;
  for (auto _ : State) {
    R.write(++V);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_StackWrite)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

static void BM_StackRead(benchmark::State &State) {
  StackRegister R(static_cast<size_t>(State.range(0)));
  R.write(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.read(0));
}
BENCHMARK(BM_StackRead)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

static void BM_MajorityWrite(benchmark::State &State) {
  size_t T = static_cast<size_t>(State.range(0));
  MajorityRegister R(2 * T + 1, T);
  int64_t V = 0;
  for (auto _ : State) {
    R.write(++V);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MajorityWrite)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

static void BM_MajorityRead(benchmark::State &State) {
  size_t T = static_cast<size_t>(State.range(0));
  MajorityRegister R(2 * T + 1, T);
  R.write(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.read(0));
}
BENCHMARK(BM_MajorityRead)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

static void BM_MultiReaderRead(benchmark::State &State) {
  MultiReaderRegister R(static_cast<size_t>(State.range(0)),
                        /*Tolerated=*/1);
  R.write(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.read(0));
}
BENCHMARK(BM_MultiReaderRead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_MultiReaderWrite(benchmark::State &State) {
  MultiReaderRegister R(static_cast<size_t>(State.range(0)),
                        /*Tolerated=*/1);
  int64_t V = 0;
  for (auto _ : State) {
    R.write(++V);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MultiReaderWrite)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

namespace {

void printCostTable() {
  std::printf("\nE6 model-level cost: base invocations per operation\n");
  Table T;
  T.setHeader({"construction", "t", "bases", "write-cost", "read-cost"});
  for (size_t Tol : {0, 1, 2, 4}) {
    {
      StackRegister R(Tol);
      uint64_t Before = R.baseInvocations();
      R.write(1);
      uint64_t W = R.baseInvocations() - Before;
      Before = R.baseInvocations();
      R.read(0);
      uint64_t Rd = R.baseInvocations() - Before;
      T.addRow({"stack (responsive)", format("%zu", Tol),
                format("%zu", R.baseCount()),
                format("%llu", (unsigned long long)W),
                format("%llu", (unsigned long long)Rd)});
    }
    {
      MajorityRegister R(2 * Tol + 1, Tol);
      uint64_t Before = R.baseInvocations();
      R.write(1);
      uint64_t W = R.baseInvocations() - Before;
      Before = R.baseInvocations();
      R.read(0);
      uint64_t Rd = R.baseInvocations() - Before;
      T.addRow({"majority (nonresponsive)", format("%zu", Tol),
                format("%zu", R.baseCount()),
                format("%llu", (unsigned long long)W),
                format("%llu", (unsigned long long)Rd)});
    }
  }
  std::printf("%s", T.render().c_str());
}

void printSurvivalTable() {
  std::printf("\nE6 failure survival: full crash budget injected mid-run\n");
  Table T;
  T.setHeader({"construction", "t", "crashes", "history-ops", "atomic"});
  for (size_t Tol : {1, 2, 4}) {
    {
      StackRegister R(Tol);
      RegisterStressOptions Opt;
      Opt.Readers = 1;
      Opt.Writes = 150;
      Opt.ReadsPerReader = 150;
      for (size_t K = 0; K != Tol; ++K)
        Opt.InjectBeforeWrite[30 * (K + 1)] = [&R, K] { R.base(K).crash(); };
      History H = stressRegister(R, Opt);
      Status S = checkSwmrAtomicity(H);
      T.addRow({"stack (responsive)", format("%zu", Tol),
                format("%zu", Tol), format("%zu", H.Ops.size()),
                S.ok() ? "yes" : S.error().str()});
    }
    {
      MajorityRegister R(2 * Tol + 1, Tol);
      RegisterStressOptions Opt;
      Opt.Readers = 2;
      Opt.Writes = 150;
      Opt.ReadsPerReader = 100;
      for (size_t K = 0; K != Tol; ++K)
        Opt.InjectBeforeWrite[30 * (K + 1)] = [&R, K] { R.base(K).crash(); };
      History H = stressRegister(R, Opt);
      Status S = checkSwmrAtomicity(H);
      T.addRow({"majority (nonresponsive)", format("%zu", Tol),
                format("%zu", Tol), format("%zu", H.Ops.size()),
                S.ok() ? "yes" : S.error().str()});
    }
  }
  std::printf("%s", T.render().c_str());
}

void printAblationTable() {
  std::printf("\nE6 ablation: the majority read's write-back phase\n");
  // Cost side: the write-back doubles the read's base-invocation bill.
  Table T;
  T.setHeader({"variant", "t", "read-cost", "guarantee"});
  for (size_t Tol : {1, 2, 4}) {
    for (bool WriteBack : {true, false}) {
      MajorityRegister R(2 * Tol + 1, Tol);
      R.setWriteBackEnabled(WriteBack);
      R.write(1);
      uint64_t Before = R.baseInvocations();
      R.read(0);
      uint64_t Cost = R.baseInvocations() - Before;
      T.addRow({WriteBack ? "with write-back" : "without (ablated)",
                format("%zu", Tol), format("%llu", (unsigned long long)Cost),
                WriteBack ? "atomic" : "regular only"});
    }
  }
  std::printf("%s", T.render().c_str());
  std::printf("The ablated variant halves the read cost but forfeits\n"
              "atomicity: the RegistersTest ablation pair exhibits the\n"
              "new/old inversion an adversary extracts from it.\n");
}

} // namespace

int main(int argc, char **argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  printCostTable();
  printSurvivalTable();
  printAblationTable();
  return 0;
}
