//===- bench_overlay_churn.cpp - E8: the overlay substrate ----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E8: behavior of the churn-maintained overlay — the substrate
// the knowledge axis is parameterized over. For each attachment policy and
// target degree, drive a long random join/leave workload and report the
// diameter's trajectory, degree statistics, and connectivity. This is what
// justifies using the random-attach overlay for "diameter bounded" classes
// (its diameter stays small and stable under churn) and the chain overlay
// as the witness for "diameter unbounded".
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Gossip.h"
#include "dyndist/graph/Algorithms.h"
#include "dyndist/graph/Overlay.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include "BenchBuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string_view>

using namespace dyndist;

namespace {

struct OverlayReport {
  Summary Diameter;
  double MeanDegree = 0;
  uint64_t MaxDegree = 0;
  size_t DisconnectedSamples = 0;
  size_t FinalSize = 0;
  size_t CutVertices = 0; ///< Articulation points of the final overlay.
};

/// Random workload: start with Initial joins, then Steps events, each a
/// join with probability JoinProb else a leave of a random member;
/// samples diameter every SampleEvery events.
OverlayReport drive(AttachMode Mode, size_t Degree, size_t Initial,
                    size_t Steps, double JoinProb, uint64_t Seed,
                    size_t SampleEvery = 16,
                    RepairMode Repair = RepairMode::PatchPath) {
  DynamicOverlay O(Degree, Rng(Seed), Mode, Repair);
  Rng R(Seed ^ 0xabcdefULL);
  ProcessId Next = 0;
  for (size_t I = 0; I != Initial; ++I)
    O.join(Next++);

  OverlayReport Rep;
  std::vector<double> Diameters;
  for (size_t Step = 0; Step != Steps; ++Step) {
    bool Join = O.graph().nodeCount() <= 3 || R.nextBernoulli(JoinProb);
    if (Join) {
      O.join(Next++);
    } else {
      std::vector<ProcessId> Nodes = O.graph().nodes();
      O.leave(R.pick(Nodes));
    }
    if (Step % SampleEvery == 0) {
      auto D = diameter(O.graph());
      if (D)
        Diameters.push_back(static_cast<double>(*D));
      else
        ++Rep.DisconnectedSamples;
    }
  }
  Rep.Diameter = Summary::of(Diameters);
  const Graph &G = O.graph();
  Rep.FinalSize = G.nodeCount();
  uint64_t DegreeSum = 0;
  for (ProcessId P : G.nodes()) {
    uint64_t Deg = G.degree(P);
    DegreeSum += Deg;
    Rep.MaxDegree = std::max(Rep.MaxDegree, Deg);
  }
  Rep.MeanDegree =
      G.nodeCount() ? double(DegreeSum) / double(G.nodeCount()) : 0;
  Rep.CutVertices = articulationPoints(G).size();
  return Rep;
}

// --- Graph/overlay micro-bench section (google-benchmark) -----------------
//
// Measures the overlay substrate itself: churn absorption (join/leave with
// the patch repair rule), neighbor-list iteration (the inner loop of every
// broadcast), BFS connectivity, and a full-stack digest-gossip run over a
// churn-maintained overlay. Run with any --benchmark_* flag to execute
// only this section; tools/dyndist-bench-report --graph merges the JSON
// into BENCH_kernel.json.

constexpr size_t ChurnInitial = 64;
constexpr size_t ChurnSteps = 4096;

/// One deterministic E8-style churn workload (no analysis sampling):
/// returns the number of churn events executed.
uint64_t runGraphChurn(DynamicOverlay &O) {
  Rng R(42 ^ 0xabcdefULL);
  ProcessId Next = 0;
  for (size_t I = 0; I != ChurnInitial; ++I)
    O.join(Next++);
  for (size_t Step = 0; Step != ChurnSteps; ++Step) {
    if (O.graph().nodeCount() <= 3 || R.nextBernoulli(0.5)) {
      O.join(Next++);
    } else {
      // Zero-copy victim pick; the view is consumed before leave() mutates.
      NeighborView Nodes = O.graph().nodesView();
      O.leave(Nodes[static_cast<size_t>(R.nextBelow(Nodes.size()))]);
    }
  }
  return ChurnInitial + ChurnSteps;
}

void BM_GraphChurn(benchmark::State &State) {
  uint64_t Events = 0;
  for (auto _ : State) {
    DynamicOverlay O(3, Rng(42));
    Events += runGraphChurn(O);
    benchmark::DoNotOptimize(O.graph().nodeCount());
  }
  // items_per_second in the report is churn events (joins + leaves)/sec.
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_GraphChurn)->Unit(benchmark::kMillisecond);

/// The churned overlay every iteration benchmark walks (built once).
const Graph &churnedGraph() {
  static const Graph G = [] {
    DynamicOverlay O(3, Rng(42));
    runGraphChurn(O);
    return O.graph();
  }();
  return G;
}

void BM_NeighborIteration(benchmark::State &State) {
  const Graph &G = churnedGraph();
  uint64_t Visits = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (ProcessId P : G.nodesView())
      for (ProcessId N : G.neighborView(P))
        Sum += N;
    benchmark::DoNotOptimize(Sum);
    Visits += 2 * G.edgeCount();
  }
  // items_per_second is neighbor-list entries visited/sec.
  State.SetItemsProcessed(static_cast<int64_t>(Visits));
}
BENCHMARK(BM_NeighborIteration)->Unit(benchmark::kMillisecond);

void BM_GraphBfs(benchmark::State &State) {
  const Graph &G = churnedGraph();
  uint64_t Nodes = 0;
  for (auto _ : State) {
    bool Connected = isConnected(G);
    benchmark::DoNotOptimize(Connected);
    Nodes += G.nodeCount();
  }
  // items_per_second is nodes visited by the connectivity BFS/sec.
  State.SetItemsProcessed(static_cast<int64_t>(Nodes));
}
BENCHMARK(BM_GraphBfs)->Unit(benchmark::kMillisecond);

/// Full stack: digest-mode gossip over a churn-maintained overlay — the
/// protocol hot path the flat adjacency representation exists for (digest
/// construction + neighbor queries dominate per-event work).
void BM_OverlayGossipDigest(benchmark::State &State) {
  uint64_t Events = 0;
  for (auto _ : State) {
    Simulator S(7);
    S.setTraceLevel(TraceLevel::Off);
    DynamicOverlay O(3, Rng(8));
    O.attachTo(S);

    auto Cfg = std::make_shared<GossipConfig>();
    Cfg->DigestMode = true;
    Cfg->Rounds = 40;
    Cfg->RoundEvery = 2;
    Cfg->FanOut = 2;
    Cfg->ReportAfter = 150;
    auto Counter = std::make_shared<int64_t>(0);
    auto Factory = makeGossipFactory(Cfg, [Counter] { return ++*Counter; });
    for (int I = 0; I != 256; ++I)
      S.spawn(Factory());
    scheduleQueryStart(S, 1, /*Issuer=*/0);

    // Background churn: one crash + one replacement spawn every 8 ticks.
    std::function<void(Simulator &)> ChurnTick =
        [&ChurnTick, &Factory](Simulator &Sim) {
          const auto &Up = Sim.upSet();
          if (!Up.empty())
            Sim.crash(Up[Sim.rng().nextBelow(Up.size())]);
          Sim.spawn(Factory());
          Sim.scheduleAfter(8, ChurnTick);
        };
    S.scheduleAfter(8, ChurnTick);

    RunLimits L;
    L.MaxTime = 160;
    S.run(L);
    Events += S.stats().EventsExecuted;
    benchmark::DoNotOptimize(S.stats().MessagesSent);
  }
  // items_per_second is kernel events/sec on the gossip-digest workload.
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_OverlayGossipDigest)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]).rfind("--benchmark", 0) == 0) {
      dyndist_bench::addBuildTypeContext();
      ::benchmark::Initialize(&argc, argv);
      ::benchmark::RunSpecifiedBenchmarks();
      ::benchmark::Shutdown();
      return 0;
    }
  }

  size_t Steps = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 2000;

  std::printf("E8: overlay diameter/degree under churn (%zu events, "
              "join probability 0.5, initial population 32)\n\n",
              Steps);

  Table T;
  T.setHeader({"attach", "degree", "final-n", "diam-mean", "diam-p90",
               "diam-max", "deg-mean", "deg-max", "disconnected"});
  struct Cfg {
    AttachMode Mode;
    size_t Degree;
    const char *Name;
  } Cfgs[] = {
      {AttachMode::Random, 1, "random"}, {AttachMode::Random, 2, "random"},
      {AttachMode::Random, 3, "random"}, {AttachMode::Random, 5, "random"},
      {AttachMode::Chain, 1, "chain"},
  };
  for (const Cfg &C : Cfgs) {
    OverlayReport Rep =
        drive(C.Mode, C.Degree, /*Initial=*/32, Steps, 0.5, 42);
    T.addRow({C.Name, format("%zu", C.Degree), format("%zu", Rep.FinalSize),
              format("%.1f", Rep.Diameter.Mean),
              format("%.1f", Rep.Diameter.P90),
              format("%.0f", Rep.Diameter.Max),
              format("%.1f", Rep.MeanDegree),
              format("%llu", (unsigned long long)Rep.MaxDegree),
              format("%zu", Rep.DisconnectedSamples)});
  }
  std::printf("%s\n", T.render().c_str());

  // Growth regime: join-heavy workload, where the chain's diameter runs
  // away linearly while random attachment stays logarithmic.
  std::printf("growth regime (join probability 0.9):\n");
  Table T2;
  T2.setHeader({"attach", "degree", "final-n", "diam-max"});
  for (const Cfg &C : Cfgs) {
    OverlayReport Rep = drive(C.Mode, C.Degree, /*Initial=*/8, Steps / 4,
                              0.9, 7, /*SampleEvery=*/128);
    T2.addRow({C.Name, format("%zu", C.Degree), format("%zu", Rep.FinalSize),
               format("%.0f", Rep.Diameter.Max)});
  }
  std::printf("%s\n", T2.render().c_str());
  // Repair-rule ablation: the deterministic patch rule vs one-random-link
  // rewiring, under a departure-heavy workload where repair quality shows.
  std::printf("repair-rule ablation (join probability 0.45, departures "
              "dominate):\n");
  Table T3;
  T3.setHeader({"repair", "degree", "diam-mean", "deg-mean", "deg-max",
                "disconnected-samples", "cut-vertices"});
  for (RepairMode Repair : {RepairMode::PatchPath, RepairMode::RandomRewire}) {
    for (size_t Degree : {1, 2, 3}) {
      OverlayReport Rep = drive(AttachMode::Random, Degree, /*Initial=*/48,
                                Steps, 0.45, 99, 16, Repair);
      T3.addRow({Repair == RepairMode::PatchPath ? "patch-path"
                                                 : "random-rewire",
                 format("%zu", Degree), format("%.1f", Rep.Diameter.Mean),
                 format("%.1f", Rep.MeanDegree),
                 format("%llu", (unsigned long long)Rep.MaxDegree),
                 format("%zu", Rep.DisconnectedSamples),
                 format("%zu", Rep.CutVertices)});
    }
  }
  std::printf("%s\n", T3.render().c_str());

  std::printf(
      "Expected shape: zero disconnected samples under the patch rule at\n"
      "any degree (its guarantee is deterministic) at the cost of degree\n"
      "inflation; random rewiring keeps degrees near the target but buys\n"
      "only probabilistic connectivity — occasional disconnected samples\n"
      "are the price. Random attachment keeps the diameter small and flat\n"
      "while the chain's diameter grows with the population.\n");
  return 0;
}
