//===- bench_solvability.cpp - E1: the solvability matrix -----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E1 (claims C1-C4): for every cell of the arrival x knowledge
// grid, run the oracle-recommended algorithm over many seeds and report the
// fraction of class-admissible runs in which the one-time query met its
// spec. Expected shape: ~1.0 in every cell the oracle calls solvable (and
// in quiescent-solvable cells run in their quiescent regime), well below
// 1.0 in the unsolvable cells, where the recommended entry is best-effort
// gossip and the spec cannot be met in every run.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

int main(int argc, char **argv) {
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 20;
  const uint64_t FiniteN = 60, B = 28, D = 10;

  std::printf("E1: one-time-query solvability matrix "
              "(%d seeds per cell; n=%llu, b=%llu, D=%llu)\n\n",
              Seeds, (unsigned long long)FiniteN, (unsigned long long)B,
              (unsigned long long)D);

  Table T;
  T.setHeader({"class", "oracle", "algorithm", "runs", "terminated",
               "valid-rate", "mean-coverage", "oracle-agrees"});

  for (const SystemClass &Class : canonicalClassGrid(FiniteN, B, D)) {
    int Admissible = 0, Terminated = 0, Valid = 0;
    double CoverageSum = 0;
    int CoverageRuns = 0;
    for (int Seed = 1; Seed <= Seeds; ++Seed) {
      ExperimentConfig Cfg;
      Cfg.Seed = static_cast<uint64_t>(Seed) * 131 + 7;
      Cfg.Class = Class;
      Cfg.Churn.JoinRate = 0.05;
      Cfg.Churn.MeanSession = 400;
      Cfg.Churn.Horizon = 600;
      Cfg.QueryAt = 200;
      Cfg.Horizon = 900;
      if (Class.Arrival.Kind == ArrivalKind::FiniteArrival)
        Cfg.Churn.QuiesceAt = 150;
      if (Class.Arrival.Kind == ArrivalKind::InfiniteArrival &&
          Class.Knowledge.Diameter != DiameterKnowledge::KnownBound) {
        // The adversarial regime of the unsolvable cells: fierce arrivals
        // and, where the class allows it, an unboundedly stretching
        // overlay.
        Cfg.Churn.JoinRate = 0.5;
        Cfg.Churn.MeanSession = 150;
        if (Class.Knowledge.Diameter == DiameterKnowledge::Unbounded)
          Cfg.Attach = AttachMode::Chain;
      }
      Cfg.Gossip.ReportAfter = 60;
      Cfg.Gossip.Rounds = 30;
      Cfg.Gossip.RoundEvery = 2;

      ExperimentResult R = runQueryExperiment(Cfg);
      if (!R.ClassAdmissible || !R.QueryIssued)
        continue;
      ++Admissible;
      if (R.Verdict.Terminated) {
        ++Terminated;
        CoverageSum += R.Verdict.Coverage;
        ++CoverageRuns;
      }
      if (R.Verdict.valid())
        ++Valid;
    }

    Solvability Oracle = oneTimeQuerySolvability(Class);
    double ValidRate = Admissible ? double(Valid) / Admissible : 0.0;
    bool Agrees = Oracle == Solvability::Unsolvable ? ValidRate < 1.0
                                                    : ValidRate == 1.0;
    T.addRow({Class.name(), solvabilityName(Oracle),
              algorithmName(recommendedAlgorithm(Class)),
              format("%d", Admissible),
              format("%.2f", Admissible ? double(Terminated) / Admissible : 0),
              format("%.2f", ValidRate),
              format("%.2f", CoverageRuns ? CoverageSum / CoverageRuns : 0),
              Agrees ? "yes" : "NO"});
  }
  std::printf("%s\n", T.render().c_str());
  return 0;
}
