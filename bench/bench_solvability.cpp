//===- bench_solvability.cpp - E1: the solvability matrix -----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E1 (claims C1-C4): for every cell of the arrival x knowledge
// grid, run the oracle-recommended algorithm over many seeds and report the
// fraction of class-admissible runs in which the one-time query met its
// spec. Expected shape: ~1.0 in every cell the oracle calls solvable (and
// in quiescent-solvable cells run in their quiescent regime), well below
// 1.0 in the unsolvable cells, where the recommended entry is best-effort
// gossip and the spec cannot be met in every run.
//
// The seed axis is sharded across threads by SweepRunner (--threads N /
// DYNDIST_THREADS); the aggregate is byte-identical at any thread count.
// Run with any --benchmark_* flag to execute only the BM_SweepSolvability
// wall-clock section (seed sweeps at 1/2/4/hw threads), which
// tools/dyndist-bench-report --sweep merges into BENCH_kernel.json.
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/aggregation/SimArena.h"
#include "dyndist/runtime/SweepRunner.h"
#include "dyndist/support/StringUtils.h"

#include "BenchBuildInfo.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

using namespace dyndist;

namespace {

constexpr uint64_t E1MasterSeed = 0xE1;
constexpr uint64_t FiniteN = 60, B = 28, D = 10;

/// Per-seed verdict for one grid cell.
struct CellOutcome {
  bool Admissible = false;
  bool Terminated = false;
  bool Valid = false;
  double Coverage = 0.0;
};

CellOutcome runCell(const SystemClass &Class, uint64_t Seed,
                    SimArena *Arena) {
  ExperimentConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.Class = Class;
  Cfg.Churn.JoinRate = 0.05;
  Cfg.Churn.MeanSession = 400;
  Cfg.Churn.Horizon = 600;
  Cfg.QueryAt = 200;
  Cfg.Horizon = 900;
  if (Class.Arrival.Kind == ArrivalKind::FiniteArrival)
    Cfg.Churn.QuiesceAt = 150;
  if (Class.Arrival.Kind == ArrivalKind::InfiniteArrival &&
      Class.Knowledge.Diameter != DiameterKnowledge::KnownBound) {
    // The adversarial regime of the unsolvable cells: arrivals fierce
    // enough that members join in the final gossip rounds and survive to
    // the response (completeness then needs their contribution, which
    // cannot reach the issuer in time), and, where the class allows it, an
    // unboundedly stretching overlay. At JoinRate 0.5 the D-bounded cell
    // fails only on ~1-in-100 seeds, under-sampling the impossibility.
    Cfg.Churn.JoinRate = 2.0;
    Cfg.Churn.MeanSession = 150;
    if (Class.Knowledge.Diameter == DiameterKnowledge::Unbounded)
      Cfg.Attach = AttachMode::Chain;
  }
  Cfg.Gossip.ReportAfter = 60;
  Cfg.Gossip.Rounds = 30;
  Cfg.Gossip.RoundEvery = 2;

  ExperimentResult R = runQueryExperiment(Cfg, Arena);
  CellOutcome Out;
  if (!R.ClassAdmissible || !R.QueryIssued)
    return Out;
  Out.Admissible = true;
  Out.Terminated = R.Verdict.Terminated;
  Out.Valid = R.Verdict.valid();
  Out.Coverage = R.Verdict.Coverage;
  return Out;
}

std::vector<CellOutcome> sweepCell(const SystemClass &Class, int Seeds,
                                   unsigned Threads) {
  SweepConfig Sweep;
  Sweep.MasterSeed = E1MasterSeed;
  Sweep.SeedCount = static_cast<size_t>(Seeds);
  Sweep.Threads = Threads;
  // One arena per worker: all of a worker's assigned seeds recycle one
  // simulator shell (byte-identical results; see SimArena.h).
  return runSeedSweepWith<CellOutcome, SimArena>(
      Sweep, [&Class](SweepSeed Seed, SimArena &Arena) {
        return runCell(Class, Seed.Value, &Arena);
      });
}

// --- Sweep wall-clock section (google-benchmark) --------------------------
//
// Measures the whole-sweep wall clock of one representative solvable cell
// at a ladder of thread counts; items/sec is seeds (independent runs) per
// second. Registered dynamically so the ladder can include the host's
// hardware concurrency.

void BM_SweepSolvability(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  const int Seeds = 32;
  SystemClass Class{ArrivalModel::boundedConcurrency(B),
                    KnowledgeModel::knownDiameter(D)};
  uint64_t Ran = 0;
  for (auto _ : State) {
    auto Outcomes = sweepCell(Class, Seeds, Threads);
    Ran += Outcomes.size();
    benchmark::DoNotOptimize(Outcomes);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Ran));
}

// --- Short-run sweep throughput (fresh vs arena reuse) --------------------
//
// The setup-dominated regime the SimArena targets: populate n=100 members,
// absorb a short churn window, certify admissibility — the lifecycle shape
// of screening sweeps that tabulate membership/overlay columns rather than
// query verdicts (the query is scheduled past the horizon, so it never
// issues; sessions outlive the window). Single-threaded so runs/s isolates
// per-run cost. reuse=0 pays full DynamicSystem construction and teardown
// per seed — on the sharded rungs that includes spawning and joining the
// shard worker pool every run — while reuse=1 recycles one arena shell
// (parked workers included) across the whole sweep. items/sec is runs per
// second; dyndist-bench-report --sweep-reuse gates the shards:8 reuse/fresh
// ratio.

ExperimentConfig shortRunConfig(uint64_t Seed, unsigned Shards) {
  ExperimentConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.Class = SystemClass{ArrivalModel::boundedConcurrency(140),
                          KnowledgeModel::knownDiameter(D)};
  Cfg.InitialMembers = 100;
  Cfg.Shards = Shards;
  Cfg.Churn.JoinRate = 0.05;
  Cfg.Churn.MeanSession = 4000;
  Cfg.Churn.Horizon = 30;
  Cfg.Horizon = 30;
  Cfg.QueryAt = Cfg.Horizon + 1;
  // Throughput regime: nothing reads the diameter column here, so skip the
  // all-sources-BFS monitor that would otherwise dominate every short run
  // (identically in both the fresh and reused paths).
  Cfg.DiameterSampleEvery = 0;
  return Cfg;
}

void BM_SweepShortRuns(benchmark::State &State) {
  const bool Reuse = State.range(0) != 0;
  const unsigned Shards = static_cast<unsigned>(State.range(1));
  SweepConfig Sweep;
  Sweep.MasterSeed = E1MasterSeed;
  Sweep.SeedCount = 64;
  Sweep.Threads = 1;
  uint64_t Ran = 0;
  for (auto _ : State) {
    if (Reuse) {
      auto Out = runSeedSweepWith<ExperimentResult, SimArena>(
          Sweep, [Shards](SweepSeed Seed, SimArena &Arena) {
            return runQueryExperiment(shortRunConfig(Seed.Value, Shards),
                                      &Arena);
          });
      Ran += Out.size();
      benchmark::DoNotOptimize(Out);
    } else {
      auto Out =
          runSeedSweep<ExperimentResult>(Sweep, [Shards](SweepSeed Seed) {
            return runQueryExperiment(shortRunConfig(Seed.Value, Shards));
          });
      Ran += Out.size();
      benchmark::DoNotOptimize(Out);
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Ran));
}

void registerSweepBenchmarks() {
  auto *Bench = benchmark::RegisterBenchmark("BM_SweepSolvability",
                                             BM_SweepSolvability);
  Bench->ArgName("threads")->Unit(benchmark::kMillisecond)->UseRealTime();
  std::vector<unsigned> Ladder = {1, 2, 4};
  unsigned HW = resolveSweepThreads(0);
  if (std::find(Ladder.begin(), Ladder.end(), HW) == Ladder.end())
    Ladder.push_back(HW);
  for (unsigned T : Ladder)
    Bench->Arg(static_cast<int64_t>(T));

  auto *Short = benchmark::RegisterBenchmark("BM_SweepShortRuns",
                                             BM_SweepShortRuns);
  Short->ArgNames({"reuse", "shards"})
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  // Serial kernel plus two shard-engine rungs. The construction/teardown
  // tax the arena amortizes grows with engine weight — the serial rung
  // recycles allocator capacity and faulted pages only, the sharded rungs
  // additionally park the worker pool that a fresh run spawns and joins
  // every seed — so the reuse/fresh ratio climbs across the ladder; the
  // shards:8 rung carries the gated ratio.
  for (int64_t Shards : {0, 4, 8})
    for (int64_t Reuse : {0, 1})
      Short->Args({Reuse, Shards});
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]).rfind("--benchmark", 0) == 0) {
      registerSweepBenchmarks();
      dyndist_bench::addBuildTypeContext();
      ::benchmark::Initialize(&argc, argv);
      ::benchmark::RunSpecifiedBenchmarks();
      ::benchmark::Shutdown();
      return 0;
    }
  }

  unsigned Threads = sweepThreadsFromArgs(argc, argv);
  // 100 seeds per cell: the unsolvable cells fail at ~1% per run, so small
  // sweeps under-sample them to a fake 1.00 valid-rate. Sharded across
  // threads this costs what 20 seeds used to serially.
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 100;

  std::printf("E1: one-time-query solvability matrix "
              "(%d seeds per cell; n=%llu, b=%llu, D=%llu; %u threads)\n\n",
              Seeds, (unsigned long long)FiniteN, (unsigned long long)B,
              (unsigned long long)D, resolveSweepThreads(Threads));

  Table T;
  T.setHeader({"class", "oracle", "algorithm", "runs", "terminated",
               "valid-rate", "mean-coverage", "oracle-agrees"});

  for (const SystemClass &Class : canonicalClassGrid(FiniteN, B, D)) {
    int Admissible = 0, Terminated = 0, Valid = 0;
    double CoverageSum = 0;
    int CoverageRuns = 0;
    for (const CellOutcome &O : sweepCell(Class, Seeds, Threads)) {
      if (!O.Admissible)
        continue;
      ++Admissible;
      if (O.Terminated) {
        ++Terminated;
        CoverageSum += O.Coverage;
        ++CoverageRuns;
      }
      if (O.Valid)
        ++Valid;
    }

    Solvability Oracle = oneTimeQuerySolvability(Class);
    double ValidRate = Admissible ? double(Valid) / Admissible : 0.0;
    bool Agrees = Oracle == Solvability::Unsolvable ? ValidRate < 1.0
                                                    : ValidRate == 1.0;
    T.addRow({Class.name(), solvabilityName(Oracle),
              algorithmName(recommendedAlgorithm(Class)),
              format("%d", Admissible),
              format("%.2f", Admissible ? double(Terminated) / Admissible : 0),
              format("%.2f", ValidRate),
              format("%.2f", CoverageRuns ? CoverageSum / CoverageRuns : 0),
              Agrees ? "yes" : "NO"});
  }
  std::printf("%s\n", T.render().c_str());
  return 0;
}
