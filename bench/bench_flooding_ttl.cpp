//===- bench_flooding_ttl.cpp - E2: TTL sensitivity -----------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E2 (claim C1's sharpness): flood queries with TTL swept around
// the true overlay diameter D. Coverage must hit 1.0 exactly at TTL = D —
// below it the wave provably misses the fringe (coverage equals the BFS
// ball mass), above it coverage stays 1.0 while the message bill keeps
// growing. Run on a ring (diameter exactly N/2) and on a random regular
// overlay (diameter measured per instance).
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Flooding.h"
#include "dyndist/core/OneTimeQuery.h"
#include "dyndist/graph/Algorithms.h"
#include "dyndist/graph/Generators.h"
#include "dyndist/graph/Overlay.h"
#include "dyndist/runtime/KernelLoad.h"
#include "dyndist/runtime/SweepRunner.h"
#include "dyndist/support/StringUtils.h"

#include "BenchBuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string_view>

using namespace dyndist;

namespace {

constexpr uint64_t E2MasterSeed = 0xE2;

unsigned SweepThreads = 0; // Set once in main from --threads/env.

struct Point {
  double Coverage = 0;
  uint64_t Messages = 0;
  SimTime Latency = 0;
};

/// Sweep shape shared by all three parts of the experiment.
SweepConfig sweepConfig(uint64_t Part, int Seeds) {
  SweepConfig Sweep;
  Sweep.MasterSeed = E2MasterSeed + Part;
  Sweep.SeedCount = static_cast<size_t>(Seeds);
  Sweep.Threads = SweepThreads;
  return Sweep;
}

/// One static flood over \p Topology with the given TTL.
Point runOnce(Graph Topology, uint64_t Ttl, uint64_t Seed) {
  size_t N = Topology.nodeCount();
  Simulator S(Seed);
  // The query verdict reads Observe records and presence intervals only.
  S.setTraceLevel(TraceLevel::Lifecycle);
  DynamicOverlay O(2, Rng(Seed + 1));
  O.attachTo(S);
  auto Cfg = std::make_shared<FloodConfig>();
  Cfg->Ttl = Ttl;
  auto Factory = makeFloodFactory(Cfg, [] { return 1; });
  for (size_t I = 0; I != N; ++I)
    S.spawn(Factory());
  O.seed(std::move(Topology));
  scheduleQueryStart(S, 1, 0);
  RunLimits L;
  L.MaxTime = 4 * (Ttl + 4);
  S.run(L);

  Point P;
  auto Issue = S.trace().firstObservation(0, OtqIssueKey);
  if (!Issue)
    return P;
  QueryVerdict V = checkOneTimeQuery(S.trace(), 0, Issue->Time, L.MaxTime);
  P.Coverage = V.Coverage;
  P.Messages = S.stats().MessagesSent;
  if (V.Terminated)
    P.Latency = V.ResponseTime - Issue->Time;
  return P;
}

// --- Kernel throughput section (google-benchmark) -------------------------
//
// Measures raw kernel events/sec on a TTL-bounded flood cascade over 1000
// processes: a burst of seeds fans out multiplicatively until the TTL is
// spent, stressing queue push/pop and message dispatch with no timer
// traffic. Run with any --benchmark_* flag to execute only this section;
// tools/dyndist-bench-report merges the JSON into BENCH_kernel.json.

KernelLoadConfig floodLoad() {
  KernelLoadConfig Cfg;
  Cfg.Seed = 42;
  Cfg.Processes = 1000;
  Cfg.Horizon = 100;
  Cfg.FloodSeeds = 8;
  Cfg.FloodFanout = 3;
  Cfg.FloodTtl = 9;
  return Cfg;
}

void BM_KernelFloodTtl(benchmark::State &State, TraceLevel Level) {
  KernelLoadConfig Cfg = floodLoad();
  uint64_t Events = 0;
  for (auto _ : State) {
    KernelLoadResult R = runKernelLoad(Cfg, Level);
    Events += R.Stats.EventsExecuted;
    benchmark::DoNotOptimize(R);
  }
  // items_per_second in the report is kernel events/sec.
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK_CAPTURE(BM_KernelFloodTtl, n1000_trace_off, TraceLevel::Off)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KernelFloodTtl, n1000_trace_lifecycle,
                  TraceLevel::Lifecycle)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KernelFloodTtl, n1000_trace_full, TraceLevel::Full)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]).rfind("--benchmark", 0) == 0) {
      dyndist_bench::addBuildTypeContext();
      ::benchmark::Initialize(&argc, argv);
      ::benchmark::RunSpecifiedBenchmarks();
      ::benchmark::Shutdown();
      return 0;
    }
  }

  SweepThreads = sweepThreadsFromArgs(argc, argv);
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("E2: flooding coverage and cost vs TTL (claim C1); "
              "%d seeds/point, %u threads\n\n",
              Seeds, resolveSweepThreads(SweepThreads));

  // Part 1: ring of 24 nodes, diameter exactly 12.
  {
    const size_t N = 24;
    const uint64_t D = 12;
    Table T;
    T.setHeader({"overlay", "true-D", "ttl", "coverage", "messages",
                 "wave-latency"});
    for (uint64_t Ttl : {D - 3, D - 2, D - 1, D, D + 1, D + 2}) {
      auto Points = runSeedSweep<Point>(
          sweepConfig(1, Seeds),
          [&](SweepSeed Seed) { return runOnce(makeRing(N), Ttl, Seed.Value); });
      double Cov = 0;
      uint64_t Msg = 0;
      SimTime Lat = 0;
      for (const Point &P : Points) {
        Cov += P.Coverage;
        Msg += P.Messages;
        Lat += P.Latency;
      }
      T.addRow({format("ring(%zu)", N), format("%llu", (unsigned long long)D),
                format("%llu", (unsigned long long)Ttl),
                format("%.3f", Cov / Seeds),
                format("%llu", (unsigned long long)(Msg / Seeds)),
                format("%llu", (unsigned long long)(Lat / Seeds))});
    }
    std::printf("%s\n", T.render().c_str());
  }

  // Part 2: random 4-regular overlays; TTL relative to each instance's
  // measured diameter.
  {
    Table T;
    T.setHeader({"overlay", "delta", "coverage", "messages"});
    for (int Delta = -3; Delta <= 2; ++Delta) {
      struct RegularOutcome {
        bool Counted = false;
        Point P;
      };
      auto Outcomes = runSeedSweep<RegularOutcome>(
          sweepConfig(2, Seeds), [Delta](SweepSeed Seed) {
            RegularOutcome Out;
            Rng R(Seed.Value);
            Graph G = makeRandomRegular(48, 4, R);
            auto Diam = diameter(G);
            if (!Diam)
              return Out;
            long Ttl = static_cast<long>(*Diam) + Delta;
            if (Ttl < 0)
              return Out;
            Out.Counted = true;
            Out.P = runOnce(std::move(G), static_cast<uint64_t>(Ttl),
                            Seed.Value);
            return Out;
          });
      double Cov = 0;
      uint64_t Msg = 0;
      int Runs = 0;
      for (const RegularOutcome &O : Outcomes) {
        if (!O.Counted)
          continue;
        Cov += O.P.Coverage;
        Msg += O.P.Messages;
        ++Runs;
      }
      if (Runs == 0)
        continue;
      T.addRow({"4-regular(48)", format("D%+d", Delta),
                format("%.3f", Cov / Runs),
                format("%llu", (unsigned long long)(Msg / Runs))});
    }
    std::printf("%s\n", T.render().c_str());
  }

  // Part 3: the synchrony caveat — the TTL bound tames locality, but the
  // reply deadline still needs a latency bound. Under heavy-tailed delays
  // a deadline sized for MaxLatency=L fails whenever a reply draws a
  // longer delay, no matter that TTL = D.
  {
    Table T;
    T.setHeader({"latency", "deadline-sized-for", "valid-rate",
                 "mean-coverage"});
    struct Case {
      const char *Name;
      bool HeavyTail;
      SimTime AssumedMax;
    } Cases[] = {
        {"synchronous", false, 1},
        {"heavy-tail", true, 1},
        {"heavy-tail", true, 4},
        {"heavy-tail", true, 16},
    };
    for (const Case &C : Cases) {
      struct TailOutcome {
        int Valid = 0;
        double Coverage = 0;
      };
      auto Outcomes = runSeedSweep<TailOutcome>(
          sweepConfig(3, Seeds), [&C](SweepSeed Seed) {
            TailOutcome Out;
            size_t N = 16;
            Simulator S(Seed.Value);
            S.setTraceLevel(TraceLevel::Lifecycle);
            if (C.HeavyTail)
              S.setLatencyModel(
                  std::make_unique<HeavyTailLatency>(1, 1.3, 64));
            DynamicOverlay O(2, Rng(Seed.Value + 99));
            O.attachTo(S);
            auto Cfg = std::make_shared<FloodConfig>();
            Cfg->Ttl = 8; // Ring of 16: true diameter.
            Cfg->MaxLatency = C.AssumedMax;
            auto Factory = makeFloodFactory(Cfg, [] { return 1; });
            for (size_t I = 0; I != N; ++I)
              S.spawn(Factory());
            O.seed(makeRing(N));
            scheduleQueryStart(S, 1, 0);
            RunLimits L;
            L.MaxTime = 5000;
            S.run(L);
            auto Issue = S.trace().firstObservation(0, OtqIssueKey);
            if (!Issue)
              return Out;
            QueryVerdict V =
                checkOneTimeQuery(S.trace(), 0, Issue->Time, 5000);
            Out.Valid = V.valid();
            Out.Coverage = V.Coverage;
            return Out;
          });
      int Valid = 0;
      double Cov = 0;
      for (const TailOutcome &O : Outcomes) {
        Valid += O.Valid;
        Cov += O.Coverage;
      }
      T.addRow({C.Name, format("L=%llu", (unsigned long long)C.AssumedMax),
                format("%.2f", double(Valid) / Seeds),
                format("%.3f", Cov / Seeds)});
    }
    std::printf("%s\n", T.render().c_str());
  }

  std::printf(
      "Expected shape: coverage < 1 for every TTL < D, exactly 1.0 from\n"
      "TTL = D on; messages grow with TTL past D with no coverage gain;\n"
      "and under heavy-tailed latency a deadline sized for any small L\n"
      "fails outright — validity only recovers once the assumed bound\n"
      "out-runs the tail (here capped at 64 ticks; with an uncapped tail\n"
      "no fixed deadline suffices). TTL knowledge does not buy a latency\n"
      "bound: the two synchrony assumptions are separate axes.\n");
  return 0;
}
