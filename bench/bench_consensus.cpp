//===- bench_consensus.cpp - E7: consensus construction costs -------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Experiment E7 (claim C5, consensus): cost and robustness of the t+1
// responsive-crash consensus chain, plus the nonresponsive dilemma table.
//
//  - google-benchmark section: ns per propose() for chain lengths t+1.
//  - table 1: base invocations per decision vs t and the number of
//    actually-crashed objects (cost is exactly t+1 regardless of failures:
//    responsive ⊥ answers are answers).
//  - table 2: the nonresponsive family's dilemma — for every WaitFor
//    parameter the outcome under a 1-fault adversary: blocked or split.
//
//===----------------------------------------------------------------------===//

#include "dyndist/arrival/Churn.h"
#include "dyndist/consensus/ConsensusChain.h"
#include "dyndist/consensus/FloodSet.h"
#include "dyndist/consensus/QuorumConsensusAttempt.h"
#include "dyndist/consensus/RotatingConsensus.h"
#include "dyndist/runtime/StressHarness.h"
#include "dyndist/runtime/ThreadRunner.h"
#include "dyndist/support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace dyndist;

static void BM_ChainPropose(benchmark::State &State) {
  // A fresh chain per iteration batch would distort timing; reuse one
  // chain — later proposals exercise the same code path (adopt sticky).
  ConsensusChain Chain(static_cast<size_t>(State.range(0)));
  int64_t V = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(Chain.propose(++V));
}
BENCHMARK(BM_ChainPropose)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_ChainProposeWithCrashedObjects(benchmark::State &State) {
  size_t Tol = 4;
  ConsensusChain Chain(Tol);
  for (long K = 0; K != State.range(0); ++K)
    Chain.object(static_cast<size_t>(K)).crash();
  int64_t V = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(Chain.propose(++V));
}
BENCHMARK(BM_ChainProposeWithCrashedObjects)->Arg(0)->Arg(2)->Arg(4);

namespace {

void printAgreementTable() {
  std::printf("\nE7 chain robustness: 6 concurrent proposers, crashes "
              "injected mid-run\n");
  Table T;
  T.setHeader({"t", "objects", "crashes", "agreement",
               "base-invocations/decision"});
  for (size_t Tol : {0, 1, 2, 4}) {
    for (size_t Crashes = 0; Crashes <= Tol; Crashes += (Tol > 2 ? 2 : 1)) {
      ConsensusChain Chain(Tol);
      ConsensusStressOptions Opt;
      Opt.Proposers = 6;
      Opt.Seed = 1000 + Tol * 10 + Crashes;
      for (size_t K = 0; K != Crashes; ++K)
        Opt.InjectBeforePropose[K] = [&Chain, K] {
          Chain.object(K).crash();
        };
      auto Records = stressConsensus(Chain, Opt);
      Status S = checkConsensusRun(Records);
      T.addRow({format("%zu", Tol), format("%zu", Chain.baseCount()),
                format("%zu", Crashes), S.ok() ? "yes" : S.error().str(),
                format("%.1f", double(Chain.baseInvocations()) /
                                   double(Opt.Proposers))});
      if (Tol == 0)
        break;
    }
  }
  std::printf("%s", T.render().c_str());
}

void printDilemmaTable() {
  std::printf("\nE7 nonresponsive dilemma: n = 3 base objects, 1-fault "
              "adversary, every WaitFor choice\n");
  Table T;
  T.setHeader({"wait-for", "adversary", "outcome"});
  for (size_t WaitFor = 1; WaitFor <= 3; ++WaitFor) {
    std::vector<std::shared_ptr<BaseConsensus>> Objects;
    for (int I = 0; I != 3; ++I)
      Objects.push_back(
          std::make_shared<BaseConsensus>(FailureMode::Nonresponsive));

    if (WaitFor > 2) {
      // Silence one object: the proposer waits for all three forever.
      Objects[0]->crash();
      QuorumConsensusAttempt P(Objects, WaitFor);
      auto D = P.propose(5, std::chrono::milliseconds(100));
      T.addRow({format("%zu", WaitFor), "crash 1 object",
                D ? "decided (unexpected!)" : "BLOCKED (termination lost)"});
      continue;
    }
    // Split two proposers across quorums; linearize the second proposal
    // first on the swing object.
    for (size_t I = WaitFor; I != 3; ++I)
      Objects[I]->suspend();
    QuorumConsensusAttempt P1(Objects, WaitFor);
    auto D1 = P1.propose(5, std::chrono::milliseconds(200));
    for (size_t I = 0; I != WaitFor; ++I)
      Objects[I]->suspend();
    QuorumConsensusAttempt P2(Objects, WaitFor);
    std::optional<int64_t> D2;
    ThreadRunner Runner;
    Runner.spawn(
        [&] { D2 = P2.propose(9, std::chrono::milliseconds(5000)); });
    while (Objects[WaitFor]->deferredCount() < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Objects[WaitFor]->resumeOne(1);
    for (size_t I = 0; I + 1 < WaitFor; ++I)
      Objects[I]->resumeOne(0);
    Runner.joinAll();
    bool Split = D1 && D2 && *D1 != *D2;
    T.addRow({format("%zu", WaitFor), "delay + reorder in-flight proposals",
              Split ? format("SPLIT (%lld vs %lld: agreement lost)",
                             (long long)*D1, (long long)*D2)
                    : "agreed (unexpected!)"});
    for (auto &O : Objects)
      O->resume();
  }
  std::printf("%s", T.render().c_str());
  std::printf("Every WaitFor choice fails one horn of the dilemma: the\n"
              "impossibility of consensus self-implementation under\n"
              "nonresponsive crashes, exhibited parameter by parameter.\n");
}

void printStaticVsDynamicTable() {
  std::printf("\nE7 addendum — a static-system algorithm (FloodSet) meets "
              "the dynamic model:\n");
  Table T;
  T.setHeader({"regime", "join-rate", "participants", "decided",
               "distinct-decisions"});
  for (double Rate : {0.0, 0.05, 0.15, 0.3}) {
    Simulator S(77 + static_cast<uint64_t>(Rate * 100));
    // FloodSet outcomes are collected from Observe records + presence.
    S.setTraceLevel(TraceLevel::Lifecycle);
    auto Cfg = std::make_shared<FloodSetConfig>();
    Cfg->Faults = 1;
    auto Value = std::make_shared<int64_t>(0);
    ChurnParams P;
    P.JoinRate = Rate;
    P.MeanSession = 120;
    P.Horizon = 300;
    ChurnDriver Driver(
        ArrivalModel::infiniteArrival(), P,
        makeFloodSetFactory(Cfg, [Value] { return ++*Value; }), Rng(5));
    Driver.populateInitial(S, 10);
    Driver.start(S);
    RunLimits L;
    L.MaxTime = 600;
    S.run(L);
    FloodSetOutcome Out = collectFloodSetOutcome(S.trace());
    T.addRow({Rate == 0.0 ? "static" : "dynamic", format("%.2f", Rate),
              format("%zu", Out.Participants), format("%zu", Out.Decided),
              format("%zu", Out.DistinctDecisions.size())});
  }
  std::printf("%s", T.render().c_str());
  std::printf("In the static row everyone decides one value; as soon as\n"
              "entities keep arriving, distinct decisions accumulate — the\n"
              "divide the paper's definition effort is about.\n");
}

void printRotatingTable() {
  std::printf("\nE7 static-system reference: rotating-coordinator consensus "
              "(n = 7, f < n/2)\n");
  Table T;
  T.setHeader({"crashed-coordinators", "latency-model", "decided",
               "agreement", "max-rounds", "messages"});
  struct Case {
    size_t Crashes;
    bool HeavyTail;
  } Cases[] = {{0, false}, {1, false}, {3, false}, {0, true}, {2, true}};
  for (const Case &C : Cases) {
    Simulator S(101 + C.Crashes + (C.HeavyTail ? 10 : 0));
    // Rotating-consensus outcomes are collected from Observe records.
    S.setTraceLevel(TraceLevel::Lifecycle);
    if (C.HeavyTail)
      S.setLatencyModel(std::make_unique<HeavyTailLatency>(1, 1.2, 40));
    auto Cfg = std::make_shared<RotatingConfig>();
    std::vector<ProcessId> Pids;
    std::vector<RotatingConsensusActor *> Actors;
    for (size_t I = 0; I != 7; ++I) {
      auto Owned = std::make_unique<RotatingConsensusActor>(
          Cfg, static_cast<int64_t>(100 + I));
      Actors.push_back(Owned.get());
      Pids.push_back(S.spawn(std::move(Owned)));
    }
    Cfg->Participants = Pids;
    for (ProcessId P : Pids)
      S.scheduleAt(1, [P](Simulator &Sim) {
        Sim.sendMessage(P, P, makeBody<RcStartMsg>());
      });
    for (size_t K = 0; K != C.Crashes; ++K) {
      ProcessId Victim = Pids[K];
      S.scheduleAt(2 + K, [Victim](Simulator &Sim) { Sim.crash(Victim); });
    }
    RunLimits L;
    L.MaxTime = 20000;
    S.run(L);
    auto Records = collectRotatingOutcome(S.trace());
    Status Safety = checkConsensusRun(Records, /*RequireAllDecide=*/false);
    size_t Decided = 0;
    uint64_t MaxRounds = 0;
    for (RotatingConsensusActor *A : Actors) {
      Decided += A->decision().has_value();
      if (A->decision())
        MaxRounds = std::max(MaxRounds, A->roundsUsed());
    }
    T.addRow({format("%zu", C.Crashes),
              C.HeavyTail ? "heavy-tail" : "synchronous",
              format("%zu/7", Decided),
              Safety.ok() ? "yes" : Safety.error().str(),
              format("%llu", (unsigned long long)MaxRounds),
              format("%llu", (unsigned long long)S.stats().MessagesSent)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("The production-grade static protocol: crashes cost rounds\n"
              "and messages but never agreement — *given* the fixed, known\n"
              "participant set the dynamic models take away.\n");
}

} // namespace

int main(int argc, char **argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  printAgreementTable();
  printDilemmaTable();
  printRotatingTable();
  printStaticVsDynamicTable();
  return 0;
}
