//===- reliable_register.cpp - registers from unreliable registers --------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the register self-implementations: real threads hammer a
// reliable register built from unreliable base registers while base
// objects crash mid-run, and the recorded history is judged by the
// atomicity checker. Ends with the lower-bound demonstration: the same
// adversary that n = 2t+1 shrugs off defeats an n = 2t construction.
//
//   $ ./reliable_register
//
//===----------------------------------------------------------------------===//

#include "dyndist/registers/MajorityRegister.h"
#include "dyndist/registers/StackRegister.h"
#include "dyndist/runtime/StressHarness.h"
#include "dyndist/runtime/ThreadRunner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace dyndist;

static void report(const char *Name, const History &H, uint64_t BaseOps) {
  Status S = checkSwmrAtomicity(H);
  std::printf("%-34s ops=%-5zu base-invocations=%-6llu verdict=%s\n", Name,
              H.Ops.size(), (unsigned long long)BaseOps,
              S.ok() ? "ATOMIC" : S.error().str().c_str());
}

int main() {
  std::printf("== t+1 construction over responsive-crash bases ==\n");
  {
    StackRegister R(/*Tolerated=*/2); // 3 base registers.
    RegisterStressOptions Opt;
    Opt.Readers = 1;
    Opt.Writes = 200;
    Opt.ReadsPerReader = 200;
    // Two of three bases die mid-run: within the tolerated budget.
    Opt.InjectBeforeWrite[50] = [&R] { R.base(0).crash(); };
    Opt.InjectBeforeWrite[120] = [&R] { R.base(2).crash(); };
    History H = stressRegister(R, Opt);
    report("StackRegister t=2, 2 crashes", H, R.baseInvocations());
  }

  std::printf("\n== 2t+1 construction over nonresponsive-crash bases ==\n");
  {
    MajorityRegister R(/*NumBases=*/5, /*Tolerated=*/2);
    RegisterStressOptions Opt;
    Opt.Readers = 3;
    Opt.Writes = 150;
    Opt.ReadsPerReader = 100;
    Opt.InjectBeforeWrite[40] = [&R] { R.base(1).crash(); };
    Opt.InjectBeforeWrite[90] = [&R] { R.base(4).crash(); };
    History H = stressRegister(R, Opt);
    report("MajorityRegister n=5 t=2, 2 crashes", H, R.baseInvocations());
  }

  std::printf("\n== lower bound: n = 2t is not enough ==\n");
  {
    auto B0 = std::make_shared<BaseRegister>(FailureMode::Nonresponsive);
    auto B1 = std::make_shared<BaseRegister>(FailureMode::Nonresponsive);
    MajorityRegister R({B0, B1}, /*Tolerated=*/1,
                       /*AllowUnderprovisioned=*/true);
    HistoryRecorder Rec;

    // The write completes against {B0}; its operation on B1 stays in
    // flight (B1 is indistinguishable from a nonresponsive-crashed base).
    B1->suspend();
    uint64_t W = Rec.beginOp(0, OpKind::Write, 42);
    R.write(42);
    Rec.endOp(W);

    // A later read is served by {B1} alone, and the adversary linearizes
    // its base read before the still-pending base write.
    B0->suspend();
    std::atomic<bool> Done{false};
    int64_t Got = -1;
    uint64_t Rd = Rec.beginOp(1, OpKind::Read);
    ThreadRunner Runner;
    Runner.spawn([&] {
      Got = R.read(0);
      Done = true;
    });
    auto WaitFor = [](const std::function<bool()> &P) {
      while (!P())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    WaitFor([&] { return B1->deferredCount() == 2; });
    B1->resumeOne(1); // Read overtakes the in-flight write.
    WaitFor([&] { return B1->deferredCount() == 2; });
    B1->resumeOne(1); // Release the (stale) write-back too.
    WaitFor([&] { return Done.load(); });
    Rec.endOp(Rd, Got);
    Runner.joinAll();

    std::printf("write(42) completed, later read returned %lld\n",
                (long long)Got);
    Status S = checkSwmrAtomicity(Rec.snapshot());
    std::printf("checker: %s\n",
                S.ok() ? "ATOMIC (unexpected!)" : S.error().str().c_str());
    B0->resume();
    B1->resume();
  }
  return 0;
}
