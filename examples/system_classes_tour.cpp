//===- system_classes_tour.cpp - walking the class lattice ----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Walks the paper's 3x3 grid of dynamic-system classes (arrival dimension x
// diameter knowledge), prints the solvability oracle's verdict per cell,
// then actually runs the recommended algorithm in a system of each class
// and shows what the one-time-query checker measured.
//
//   $ ./system_classes_tour [seed]
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

int main(int argc, char **argv) {
  uint64_t Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  const uint64_t FiniteN = 60, B = 28, D = 10;
  auto Grid = canonicalClassGrid(FiniteN, B, D);

  Table T;
  T.setHeader({"class", "oracle", "algorithm", "terminated", "coverage",
               "valid", "note"});

  for (const SystemClass &Class : Grid) {
    ExperimentConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.Class = Class;
    Cfg.Churn.JoinRate = 0.05;
    Cfg.Churn.MeanSession = 400;
    Cfg.Churn.Horizon = 600;
    Cfg.QueryAt = 200;
    Cfg.Horizon = 900;
    // Finite-arrival cells model the quiescent scenario the oracle's
    // conditional verdict refers to; infinite-arrival cells never quiesce
    // — and in their unsolvable cells the arrival stream is made fierce,
    // since that is the adversary the impossibility argument wields.
    if (Class.Arrival.Kind == ArrivalKind::FiniteArrival)
      Cfg.Churn.QuiesceAt = 150;
    if (Class.Arrival.Kind == ArrivalKind::InfiniteArrival &&
        Class.Knowledge.Diameter != DiameterKnowledge::KnownBound) {
      Cfg.Churn.JoinRate = 0.5;
      Cfg.Churn.MeanSession = 150;
    }
    // Unbounded-diameter cells grow a chain overlay (the constructive
    // witness of unboundedness) unless the class itself forbids it.
    if (Class.Knowledge.Diameter == DiameterKnowledge::Unbounded &&
        Class.Arrival.Kind == ArrivalKind::InfiniteArrival)
      Cfg.Attach = AttachMode::Chain;
    Cfg.Gossip.ReportAfter = 60;
    Cfg.Gossip.Rounds = 30;
    Cfg.Gossip.RoundEvery = 2;

    Solvability Oracle = oneTimeQuerySolvability(Class);
    RecommendedAlgorithm Algo = recommendedAlgorithm(Class);
    ExperimentResult R = runQueryExperiment(Cfg);

    std::string Note;
    if (!R.ClassAdmissible)
      Note = "run left the class";
    else if (!R.QueryIssued)
      Note = "query not issued";
    T.addRow({Class.name(), solvabilityName(Oracle), algorithmName(Algo),
              R.Verdict.Terminated ? "yes" : "no",
              format("%.2f", R.Verdict.Coverage),
              R.Verdict.valid() ? "yes" : "no", Note});
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Reading guide: 'solvable' cells must come out valid; the\n"
              "'quiescent-solvable' row is run in its quiescent regime (so\n"
              "echo terminates); 'unsolvable' cells run best-effort gossip\n"
              "and are expected to terminate with partial coverage.\n");
  return 0;
}
