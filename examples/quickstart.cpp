//===- quickstart.cpp - dyndist in one page -------------------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Builds a dynamic distributed system of a given class — bounded
// concurrency, disclosed diameter bound — lets churn run, issues the
// paper's canonical one-time query with the TTL-flooding algorithm, and
// has the checker grade the execution.
//
//   $ ./quickstart [seed]
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Flooding.h"
#include "dyndist/core/DynamicSystem.h"
#include "dyndist/core/OneTimeQuery.h"
#include "dyndist/core/Solvability.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

int main(int argc, char **argv) {
  uint64_t Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Declare the class of dynamic systems we are in: at most 28 entities
  //    up at any time (bound known), and the overlay's diameter promised
  //    to stay within 10 (bound disclosed to algorithms).
  DynamicSystemConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.Class = {ArrivalModel::boundedConcurrency(28),
               KnowledgeModel::knownDiameter(10)};
  Cfg.InitialMembers = 20;
  Cfg.OverlayDegree = 3;
  Cfg.Churn.JoinRate = 0.05;    // Expected joins per tick.
  Cfg.Churn.MeanSession = 400;  // Mean membership duration in ticks.
  Cfg.Churn.Horizon = 600;
  Cfg.MonitorUntil = 600;

  std::printf("system class : %s\n", Cfg.Class.name().c_str());
  std::printf("solvability  : %s via %s\n",
              solvabilityName(oneTimeQuerySolvability(Cfg.Class)).c_str(),
              algorithmName(recommendedAlgorithm(Cfg.Class)).c_str());

  // 2. Every member runs the flooding actor; the class's knowledge grant
  //    fixes the legal TTL.
  auto FloodCfg = std::make_shared<FloodConfig>();
  FloodCfg->Ttl = *derivableTtl(Cfg.Class);
  auto Values = std::make_shared<int64_t>(0);
  auto Factory = makeFloodFactory(FloodCfg, [Values] { return ++*Values; });

  DynamicSystem Sys(Cfg, Factory);

  // 3. Spawn the issuer (outside the churn driver so it stays), let the
  //    system churn for a while, then issue the query.
  ProcessId Issuer = Sys.sim().spawn(Factory());
  scheduleQueryStart(Sys.sim(), /*When=*/200, Issuer);

  RunLimits Limits;
  Limits.MaxTime = 700;
  Sys.run(Limits);

  // 4. Certify the run was really a behavior of the declared class, then
  //    grade the query against the one-time-query specification.
  Status ClassOk = Sys.checkClassAdmissible();
  std::printf("class check  : %s\n",
              ClassOk.ok() ? "admissible" : ClassOk.error().str().c_str());
  std::printf("churn        : %llu arrivals, peak concurrency %zu, "
              "max overlay diameter %llu\n",
              (unsigned long long)Sys.churn().arrivals(),
              Sys.sim().trace().maxConcurrency(),
              (unsigned long long)Sys.maxObservedDiameter());

  auto Issue = Sys.sim().trace().firstObservation(Issuer, OtqIssueKey);
  if (!Issue) {
    std::printf("query was never issued\n");
    return 1;
  }
  QueryVerdict V =
      checkOneTimeQuery(Sys.sim().trace(), Issuer, Issue->Time, 700);
  std::printf("query        : %s\n", V.str().c_str());
  std::printf("verdict      : %s\n", V.valid() ? "VALID" : "INVALID");
  return V.valid() ? 0 : 1;
}
