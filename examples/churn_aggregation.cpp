//===- churn_aggregation.cpp - aggregation under churn --------------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Sweeps the churn rate and shows how the three query algorithms respond:
// flooding (with a legal TTL) keeps meeting the spec, echo stops
// terminating once churn interferes with its wave, and gossip degrades
// gracefully — partial coverage instead of collapse.
//
//   $ ./churn_aggregation [seeds-per-point]
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Experiment.h"
#include "dyndist/support/Stats.h"
#include "dyndist/support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dyndist;

namespace {

struct Row {
  double TerminationRate = 0;
  double MeanCoverage = 0;
  double ValidRate = 0;
  double MeanCensusError = 0; ///< |reported census - live population| rel.
  int Runs = 0;
};

Row sweep(RecommendedAlgorithm Algo, double JoinRate, int Seeds) {
  Row Out;
  OnlineStats Coverage, CensusError;
  int Terminated = 0, Valid = 0, Counted = 0;
  for (int Seed = 1; Seed <= Seeds; ++Seed) {
    ExperimentConfig Cfg;
    Cfg.Seed = static_cast<uint64_t>(Seed) * 977;
    Cfg.Class = {ArrivalModel::boundedConcurrency(40),
                 KnowledgeModel::knownDiameter(10)};
    Cfg.UseRecommended = false;
    Cfg.Algorithm = Algo;
    Cfg.InitialMembers = 24;
    Cfg.Churn.JoinRate = JoinRate;
    // Keep the population roughly stable as the join rate grows.
    Cfg.Churn.MeanSession = JoinRate > 0 ? 24.0 / JoinRate : 1e9;
    Cfg.Churn.Horizon = 600;
    Cfg.QueryAt = 200;
    Cfg.Horizon = 900;
    Cfg.Gossip.ReportAfter = 60;
    Cfg.Gossip.Rounds = 30;
    Cfg.Gossip.RoundEvery = 2;

    ExperimentResult R = runQueryExperiment(Cfg);
    if (!R.ClassAdmissible || !R.QueryIssued)
      continue; // Not a behavior of the declared class: skip.
    ++Counted;
    if (R.Verdict.Terminated) {
      ++Terminated;
      Coverage.add(R.Verdict.Coverage);
      if (R.MembersAtResponse > 0) {
        double Err = std::abs(double(R.Verdict.IncludedCount) -
                              double(R.MembersAtResponse)) /
                     double(R.MembersAtResponse);
        CensusError.add(Err);
      }
    }
    if (R.Verdict.valid())
      ++Valid;
  }
  Out.Runs = Counted;
  if (Counted > 0) {
    Out.TerminationRate = double(Terminated) / Counted;
    Out.ValidRate = double(Valid) / Counted;
  }
  Out.MeanCoverage = Coverage.mean();
  Out.MeanCensusError = CensusError.mean();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  const double Rates[] = {0.0, 0.02, 0.05, 0.1, 0.2, 0.4};
  struct {
    RecommendedAlgorithm Algo;
    const char *Name;
  } Algos[] = {
      {RecommendedAlgorithm::FloodingKnownDiameter, "flood(D)"},
      {RecommendedAlgorithm::EchoTermination, "echo"},
      {RecommendedAlgorithm::GossipBestEffort, "gossip"},
  };

  Table T;
  T.setHeader({"algorithm", "join-rate", "runs", "terminated", "coverage",
               "census-err", "valid"});
  for (const auto &A : Algos) {
    for (double Rate : Rates) {
      Row R = sweep(A.Algo, Rate, Seeds);
      T.addRow({A.Name, format("%.2f", Rate), format("%d", R.Runs),
                format("%.2f", R.TerminationRate),
                format("%.2f", R.MeanCoverage),
                format("%.2f", R.MeanCensusError),
                format("%.2f", R.ValidRate)});
    }
  }
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "Expected shape: flood(D) stays valid across rates; echo's\n"
      "termination rate collapses as churn rises (missing echoes block its\n"
      "wave); gossip always terminates and stays spec-complete on the\n"
      "shrinking required set, but its census error — how far the reported\n"
      "population drifts from the live one — grows with churn: graceful\n"
      "degradation instead of collapse.\n");
  return 0;
}
