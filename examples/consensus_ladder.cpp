//===- consensus_ladder.cpp - consensus from unreliable consensus ---------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// Climbs the consensus self-implementation ladder: for growing failure
// budgets t, concurrent proposers run against a t+1 chain of responsive-
// crash base consensus objects while up to t of them crash mid-run; every
// run must agree. The finale shows why the ladder stops at responsive
// failures: under nonresponsive crashes, waiting for too many objects
// blocks and waiting for fewer splits the decision.
//
//   $ ./consensus_ladder
//
//===----------------------------------------------------------------------===//

#include "dyndist/consensus/ConsensusChain.h"
#include "dyndist/consensus/QuorumConsensusAttempt.h"
#include "dyndist/runtime/StressHarness.h"
#include "dyndist/runtime/ThreadRunner.h"
#include "dyndist/support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace dyndist;

int main() {
  std::printf("== t+1 chain over responsive-crash base consensus ==\n");
  Table T;
  T.setHeader({"t", "objects", "proposers", "crashes", "agreement",
               "base-invocations"});
  for (size_t Tol = 0; Tol <= 4; ++Tol) {
    ConsensusChain Chain(Tol);
    ConsensusStressOptions Opt;
    Opt.Proposers = 6;
    Opt.Seed = 42 + Tol;
    // Crash t objects concurrently with the proposals.
    for (size_t K = 0; K != Tol; ++K)
      Opt.InjectBeforePropose[K + 1] = [&Chain, K] {
        Chain.object(K).crash();
      };
    auto Records = stressConsensus(Chain, Opt);
    Status S = checkConsensusRun(Records);
    T.addRow({format("%zu", Tol), format("%zu", Chain.baseCount()),
              format("%zu", Opt.Proposers), format("%zu", Tol),
              S.ok() ? "yes" : S.error().str(),
              format("%llu", (unsigned long long)Chain.baseInvocations())});
  }
  std::printf("%s\n", T.render().c_str());

  std::printf("== nonresponsive crashes: the dilemma ==\n");
  {
    // Waiting for all n: one silent object blocks the call forever.
    std::vector<std::shared_ptr<BaseConsensus>> Objects;
    for (int I = 0; I != 3; ++I)
      Objects.push_back(
          std::make_shared<BaseConsensus>(FailureMode::Nonresponsive));
    Objects[1]->crash();
    QuorumConsensusAttempt P(Objects, /*WaitFor=*/3);
    auto D = P.propose(5, std::chrono::milliseconds(100));
    std::printf("wait-for-all with one silent object: %s\n",
                D ? "decided (unexpected!)" : "blocked forever");
  }
  {
    // Waiting for fewer: two proposers decide differently.
    std::vector<std::shared_ptr<BaseConsensus>> Objects;
    for (int I = 0; I != 2; ++I)
      Objects.push_back(
          std::make_shared<BaseConsensus>(FailureMode::Nonresponsive));
    Objects[1]->suspend();
    QuorumConsensusAttempt P1(Objects, 1);
    auto D1 = P1.propose(5, std::chrono::milliseconds(100));

    Objects[0]->suspend();
    QuorumConsensusAttempt P2(Objects, 1);
    std::optional<int64_t> D2;
    ThreadRunner Runner;
    Runner.spawn(
        [&] { D2 = P2.propose(9, std::chrono::milliseconds(2000)); });
    while (Objects[1]->deferredCount() < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Objects[1]->resumeOne(1); // P2's proposal lands first at object 1.
    Runner.joinAll();

    std::printf("wait-for-one split: proposer A decided %lld, proposer B "
                "decided %lld\n",
                (long long)*D1, (long long)*D2);
    std::vector<ConsensusRecord> Records = {{0, 5, true, *D1},
                                            {1, 9, true, *D2}};
    Status S = checkConsensusRun(Records);
    std::printf("checker: %s\n",
                S.ok() ? "agreement (unexpected!)" : S.error().str().c_str());
    Objects[0]->resume();
    Objects[1]->resume();
  }
  std::printf("\nConclusion: with responsive failures, t+1 base consensus\n"
              "objects self-implement reliable consensus; with\n"
              "nonresponsive failures no waiting discipline is safe — the\n"
              "impossibility the tutorial proves, exhibited run by run.\n");
  return 0;
}
