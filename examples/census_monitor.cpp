//===- census_monitor.cpp - watching a dynamic system live ----------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// The application the paper's aggregation problem abstracts: a monitoring
// service that repeatedly measures the population of a churning system.
// Runs the census service over a bounded-concurrency system, prints the
// measured series against ground truth, and archives the execution as a
// JSON-lines trace that dyndist-replay can re-run under other algorithms.
//
//   $ ./census_monitor [join-rate] [trace-out.jsonl]
//
//===----------------------------------------------------------------------===//

#include "dyndist/aggregation/Census.h"
#include "dyndist/core/DynamicSystem.h"
#include "dyndist/sim/TraceIO.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dyndist;

int main(int argc, char **argv) {
  double JoinRate = argc > 1 ? std::atof(argv[1]) : 0.15;
  std::string TraceOut = argc > 2 ? argv[2] : "";

  auto Census = std::make_shared<CensusConfig>();
  Census->Flood.Ttl = 9;
  Census->Flood.Aggregate = AggregateKind::Count;
  Census->Period = 60;
  Census->Rounds = 10;

  DynamicSystemConfig Cfg;
  Cfg.Seed = 5;
  Cfg.Class = {ArrivalModel::boundedConcurrency(36),
               KnowledgeModel::knownDiameter(9)};
  Cfg.InitialMembers = 20;
  Cfg.Churn.JoinRate = JoinRate;
  Cfg.Churn.MeanSession = JoinRate > 0 ? 20.0 / JoinRate : 1e9;
  Cfg.Churn.Horizon = 800;
  Cfg.MonitorUntil = 800;

  std::printf("system class : %s, join-rate %.2f\n", Cfg.Class.name().c_str(),
              JoinRate);

  auto FloodCfg = std::make_shared<FloodConfig>();
  FloodCfg->Ttl = Census->Flood.Ttl;
  auto Factory = makeFloodFactory(FloodCfg, [] { return 1; });
  DynamicSystem Sys(Cfg, Factory);
  ProcessId Issuer =
      Sys.sim().spawn(std::make_unique<CensusIssuerActor>(Census, 1));
  scheduleQueryStart(Sys.sim(), 100, Issuer);

  RunLimits L;
  L.MaxTime = 800;
  Sys.run(L);

  Status Admissible = Sys.checkClassAdmissible();
  std::printf("class check  : %s\n",
              Admissible.ok() ? "admissible" : Admissible.error().str().c_str());

  auto Series = collectCensusSeries(Sys.sim().trace(), Issuer, 800,
                                    AggregateKind::Count);
  Table T;
  T.setHeader({"round", "t", "census", "live", "error", "valid"});
  size_t Round = 0;
  for (const CensusPoint &P : Series) {
    ++Round;
    long Err =
        static_cast<long>(P.Included) - static_cast<long>(P.LivePopulation);
    T.addRow({format("%zu", Round), format("%llu", (unsigned long long)P.IssueAt),
              format("%zu", P.Included), format("%zu", P.LivePopulation),
              format("%+ld", Err), P.Valid ? "yes" : "no"});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nmessages: %llu sent, %llu payload units, %llu arrivals\n",
              (unsigned long long)Sys.sim().stats().MessagesSent,
              (unsigned long long)Sys.sim().stats().PayloadUnits,
              (unsigned long long)Sys.churn().arrivals());

  if (!TraceOut.empty()) {
    if (Status S = writeTraceFile(Sys.sim().trace(), TraceOut); !S) {
      std::fprintf(stderr, "census_monitor: %s\n", S.error().str().c_str());
      return 2;
    }
    std::printf("trace archived to %s — try:\n"
                "  dyndist-replay --trace %s --algorithm echo\n",
                TraceOut.c_str(), TraceOut.c_str());
  }
  return 0;
}
