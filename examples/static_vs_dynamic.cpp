//===- static_vs_dynamic.cpp - where the definitions part ways ------------===//
//
// Part of the dyndist project.
//
//===----------------------------------------------------------------------===//
//
// The paper's opening move, played out in code: take a textbook
// static-system algorithm — FloodSet consensus, correct for n known
// processes and up to f crashes in f+1 rounds — and watch each of the two
// dynamic dimensions dismantle a different assumption it rests on.
//
//   Act 1: the static system. Full mesh, fixed membership, f crashes.
//          FloodSet agrees, every time.
//   Act 2: the geographical dimension. Same membership, but entities know
//          only neighbors on a ring: f+1 rounds of flooding can't cross
//          the overlay and decisions diverge.
//   Act 3: the arrival dimension. Full knowledge again, but one entity
//          arrives late: it floods into silence and decides alone.
//
//   $ ./static_vs_dynamic
//
//===----------------------------------------------------------------------===//

#include "dyndist/consensus/FloodSet.h"
#include "dyndist/graph/Generators.h"
#include "dyndist/graph/Overlay.h"
#include "dyndist/support/StringUtils.h"

#include <cstdio>

using namespace dyndist;

namespace {

void report(const char *Act, const Trace &T) {
  FloodSetOutcome Out = collectFloodSetOutcome(T);
  std::vector<std::string> Decisions;
  for (int64_t D : Out.DistinctDecisions)
    Decisions.push_back(format("%lld", (long long)D));
  std::printf("%-45s participants=%zu decided=%zu decisions={%s} -> %s\n",
              Act, Out.Participants, Out.Decided,
              join(Decisions, ",").c_str(),
              Out.DistinctDecisions.size() <= 1 ? "AGREEMENT" : "SPLIT");
}

} // namespace

int main() {
  auto Cfg = std::make_shared<FloodSetConfig>();
  Cfg->Faults = 1;

  // Act 1: the comfortable static world (full mesh, 8 processes, one
  // crash mid-protocol).
  {
    Simulator S(1);
    auto Value = std::make_shared<int64_t>(99);
    auto Factory = makeFloodSetFactory(Cfg, [Value] { return ++*Value; });
    std::vector<ProcessId> Pids;
    for (int I = 0; I != 8; ++I)
      Pids.push_back(S.spawn(Factory()));
    S.scheduleAt(1, [=](Simulator &Sim) { Sim.crash(Pids[2]); });
    RunLimits L;
    L.MaxTime = 100;
    S.run(L);
    report("act 1: static mesh, 1 crash", S.trace());
  }

  // Act 2: same entities, but each knows only its ring neighbors.
  {
    Simulator S(2);
    DynamicOverlay O(2, Rng(3));
    O.attachTo(S);
    auto Value = std::make_shared<int64_t>(99);
    auto Factory = makeFloodSetFactory(Cfg, [Value] { return ++*Value; });
    for (int I = 0; I != 12; ++I)
      S.spawn(Factory());
    O.seed(makeRing(12));
    RunLimits L;
    L.MaxTime = 100;
    S.run(L);
    report("act 2: ring overlay (locality dimension)", S.trace());
  }

  // Act 3: full knowledge, but membership moves (one late arrival).
  {
    Simulator S(3);
    auto Value = std::make_shared<int64_t>(99);
    auto Factory = makeFloodSetFactory(Cfg, [Value] { return ++*Value; });
    for (int I = 0; I != 8; ++I)
      S.spawn(Factory());
    S.scheduleAt(30, [Cfg](Simulator &Sim) {
      Sim.spawn(std::make_unique<FloodSetActor>(Cfg, /*InitialValue=*/7));
    });
    RunLimits L;
    L.MaxTime = 200;
    S.run(L);
    report("act 3: one late arrival (arrival dimension)", S.trace());
  }

  std::printf("\nThe same algorithm, three worlds: static assumptions are\n"
              "load-bearing, and each dynamic dimension removes a\n"
              "different one. That asymmetry is why the paper argues a\n"
              "dynamic system needs its own definition, not a patched\n"
              "static one.\n");
  return 0;
}
